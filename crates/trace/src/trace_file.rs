//! Recording and replaying dynamic traces.
//!
//! The paper drove its simulator with Atom-instrumented Alpha traces.
//! This module gives the reproduction the equivalent interface: any
//! [`DynInst`] stream — a synthetic generator, or a real trace converted
//! by the user — can be serialised to a compact binary file and replayed
//! later, so experiments are repeatable bit-for-bit and external traces
//! can be plugged in without touching the simulator.
//!
//! ## Format (version 1)
//!
//! ```text
//! magic "VPRT" | u32 version | records...
//! record: u8 op | u64 pc | u8 dest | u8 src1 | u8 src2
//!         [u64 addr, u8 size]   if the op is a load/store
//!         [u8 taken, u64 next_pc] if the op is a branch
//! ```
//!
//! Registers encode as `0xFF` (absent) or `class_bit << 6 | index`. All
//! integers are little-endian. The format is intentionally simple enough
//! to emit from any tracing tool.
//!
//! ## Example
//!
//! ```
//! use vpr_trace::{read_trace, write_trace, Benchmark, TraceBuilder};
//!
//! # fn main() -> std::io::Result<()> {
//! let original: Vec<_> = TraceBuilder::new(Benchmark::Li)
//!     .seed(3)
//!     .build()
//!     .take(1000)
//!     .collect();
//! let mut buf = Vec::new();
//! write_trace(&mut buf, original.iter().copied())?;
//! let replayed = read_trace(&buf[..])?;
//! assert_eq!(original, replayed);
//! # Ok(())
//! # }
//! ```

use std::io::{self, Read, Write};
use std::path::Path;
use vpr_isa::{BranchInfo, DynInst, Inst, LogicalReg, MemAccess, OpClass, RegClass};

const MAGIC: &[u8; 4] = b"VPRT";
const VERSION: u32 = 1;
const NO_REG: u8 = 0xFF;

fn op_code(op: OpClass) -> u8 {
    OpClass::ALL
        .iter()
        .position(|&o| o == op)
        .expect("op in ALL") as u8
}

fn op_from_code(code: u8) -> io::Result<OpClass> {
    OpClass::ALL
        .get(code as usize)
        .copied()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, format!("bad op code {code}")))
}

fn reg_code(reg: Option<LogicalReg>) -> u8 {
    match reg {
        None => NO_REG,
        Some(r) => {
            let class_bit = match r.class() {
                RegClass::Int => 0u8,
                RegClass::Fp => 1,
            };
            class_bit << 6 | r.index() as u8
        }
    }
}

fn reg_from_code(code: u8) -> io::Result<Option<LogicalReg>> {
    if code == NO_REG {
        return Ok(None);
    }
    let index = (code & 0x3F) as usize;
    if index >= vpr_isa::NUM_LOGICAL_PER_CLASS || code & 0x80 != 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad register code {code:#x}"),
        ));
    }
    let class = if code & 0x40 != 0 {
        RegClass::Fp
    } else {
        RegClass::Int
    };
    Ok(Some(LogicalReg::new(class, index)))
}

/// Serialises a dynamic-instruction stream. Returns the number of
/// instructions written.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_trace<W: Write, I: IntoIterator<Item = DynInst>>(
    mut w: W,
    insts: I,
) -> io::Result<u64> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    let mut count = 0u64;
    for di in insts {
        let inst = di.inst();
        w.write_all(&[op_code(di.op())])?;
        w.write_all(&di.pc().to_le_bytes())?;
        w.write_all(&[
            reg_code(inst.dest()),
            reg_code(inst.src1()),
            reg_code(inst.src2()),
        ])?;
        if di.op().is_mem() {
            let mem = di.mem().ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidInput, "memory op without an access")
            })?;
            w.write_all(&mem.addr.to_le_bytes())?;
            w.write_all(&[mem.size])?;
        }
        if di.op().is_branch() {
            let b = di.branch().ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidInput, "branch without an outcome")
            })?;
            w.write_all(&[b.taken as u8])?;
            w.write_all(&b.next_pc.to_le_bytes())?;
        }
        count += 1;
    }
    Ok(count)
}

/// Streaming reader over a recorded trace; yields instructions until end
/// of file. Implements [`Iterator`] (and therefore
/// [`InstStream`](vpr_isa::InstStream)), so it plugs directly into the
/// simulator.
///
/// A malformed record ends the stream; [`TraceFile::error`] reports what
/// went wrong (a clean EOF leaves it `None`).
#[derive(Debug)]
pub struct TraceFile<R> {
    reader: R,
    error: Option<io::Error>,
    read: u64,
    /// Where the bytes come from, for error messages — a file path for
    /// [`TraceFile::open`], `"<trace>"` for anonymous readers.
    source: String,
}

/// Opens a recorded trace file for streaming replay. Every error — open,
/// header, or a malformed record discovered mid-stream — names the path.
///
/// # Errors
///
/// Fails if the file cannot be opened or its header is not a supported
/// VPRT trace.
pub fn open_trace(path: &Path) -> io::Result<TraceFile<io::BufReader<std::fs::File>>> {
    let file = std::fs::File::open(path)
        .map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", path.display())))?;
    TraceFile::with_source(io::BufReader::new(file), path.display().to_string())
}

impl<R: Read> TraceFile<R> {
    /// Opens a recorded trace, validating the header.
    ///
    /// # Errors
    ///
    /// Fails on a bad magic number or unsupported version.
    pub fn new(reader: R) -> io::Result<Self> {
        Self::with_source(reader, "<trace>".to_string())
    }

    /// [`TraceFile::new`] with a source label (typically the file path)
    /// that every subsequent error names.
    ///
    /// # Errors
    ///
    /// Fails on a bad magic number or unsupported version; the error
    /// message names `source`.
    pub fn with_source(mut reader: R, source: String) -> io::Result<Self> {
        let mut magic = [0u8; 4];
        reader
            .read_exact(&mut magic)
            .map_err(|e| io::Error::new(e.kind(), format!("{source}: {e}")))?;
        if &magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{source}: not a VPRT trace"),
            ));
        }
        let mut v = [0u8; 4];
        reader
            .read_exact(&mut v)
            .map_err(|e| io::Error::new(e.kind(), format!("{source}: {e}")))?;
        let version = u32::from_le_bytes(v);
        if version != VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{source}: unsupported trace version {version}"),
            ));
        }
        Ok(Self {
            reader,
            error: None,
            read: 0,
            source,
        })
    }

    /// The error that terminated the stream, if any.
    pub fn error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    /// Instructions successfully decoded so far.
    pub fn instructions_read(&self) -> u64 {
        self.read
    }

    fn read_one(&mut self) -> io::Result<Option<DynInst>> {
        let mut op_byte = [0u8; 1];
        if self.reader.read(&mut op_byte)? == 0 {
            return Ok(None); // clean EOF
        }
        let op = op_from_code(op_byte[0])?;
        let mut u64buf = [0u8; 8];
        self.reader.read_exact(&mut u64buf)?;
        let pc = u64::from_le_bytes(u64buf);
        let mut regs = [0u8; 3];
        self.reader.read_exact(&mut regs)?;
        let mut inst = Inst::new(op);
        if let Some(d) = reg_from_code(regs[0])? {
            inst = inst.with_dest(d);
        }
        if let Some(s) = reg_from_code(regs[1])? {
            inst = inst.with_src1(s);
        }
        if let Some(s) = reg_from_code(regs[2])? {
            inst = inst.with_src2(s);
        }
        let mut di = DynInst::new(pc, inst);
        if op.is_mem() {
            self.reader.read_exact(&mut u64buf)?;
            let mut size = [0u8; 1];
            self.reader.read_exact(&mut size)?;
            di = di.with_mem(MemAccess {
                addr: u64::from_le_bytes(u64buf),
                size: size[0],
            });
        }
        if op.is_branch() {
            let mut taken = [0u8; 1];
            self.reader.read_exact(&mut taken)?;
            self.reader.read_exact(&mut u64buf)?;
            di = di.with_branch(BranchInfo {
                taken: taken[0] != 0,
                next_pc: u64::from_le_bytes(u64buf),
            });
        }
        Ok(Some(di))
    }
}

impl<R: Read> vpr_snap::Resumable for TraceFile<R> {
    /// A replayed trace's position is just the record count.
    fn save_state(&self, enc: &mut vpr_snap::Encoder) {
        enc.put_u64(self.read);
    }

    /// Re-skips records until the saved position is reached. The target
    /// must be a freshly opened reader over the same file (or at least one
    /// that has not yet read past the saved position).
    ///
    /// # Panics
    ///
    /// Panics if this reader already stands past the saved position, or
    /// if the file ends before the position is reached (different file).
    fn restore_state(&mut self, dec: &mut vpr_snap::Decoder<'_>) {
        let target = dec.take_u64();
        assert!(
            self.read <= target,
            "{}: trace reader already past the snapshot position ({} > {target})",
            self.source,
            self.read
        );
        while self.read < target {
            assert!(
                self.next().is_some(),
                "{}: trace file ends before the snapshot position ({} of {target})",
                self.source,
                self.read
            );
        }
    }
}

impl<R: Read> Iterator for TraceFile<R> {
    type Item = DynInst;

    fn next(&mut self) -> Option<DynInst> {
        if self.error.is_some() {
            return None;
        }
        match self.read_one() {
            Ok(Some(di)) => {
                self.read += 1;
                Some(di)
            }
            Ok(None) => None,
            Err(e) => {
                // Name the source and the record that broke, so a
                // truncated or corrupted file is locatable from the
                // message alone.
                self.error = Some(io::Error::new(
                    e.kind(),
                    format!("{}: record {}: {e}", self.source, self.read),
                ));
                None
            }
        }
    }
}

/// Reads an entire recorded trace into memory.
///
/// # Errors
///
/// Fails on a bad header or any malformed record.
pub fn read_trace<R: Read>(reader: R) -> io::Result<Vec<DynInst>> {
    let mut file = TraceFile::new(reader)?;
    let insts: Vec<DynInst> = file.by_ref().collect();
    match file.error.take() {
        Some(e) => Err(e),
        None => Ok(insts),
    }
}

/// Reads an entire recorded trace file into memory. Every error names
/// the offending path (and, for malformed records, the record index).
///
/// # Errors
///
/// Fails if the file cannot be opened, has a bad header, or holds a
/// malformed record.
pub fn read_trace_file(path: &Path) -> io::Result<Vec<DynInst>> {
    let mut file = open_trace(path)?;
    let insts: Vec<DynInst> = file.by_ref().collect();
    match file.error.take() {
        Some(e) => Err(e),
        None => Ok(insts),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Benchmark, TraceBuilder};

    fn sample(n: usize) -> Vec<DynInst> {
        TraceBuilder::new(Benchmark::Vortex)
            .seed(9)
            .build()
            .take(n)
            .collect()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let original = sample(5_000);
        let mut buf = Vec::new();
        let written = write_trace(&mut buf, original.iter().copied()).unwrap();
        assert_eq!(written, 5_000);
        let replayed = read_trace(&buf[..]).unwrap();
        assert_eq!(original, replayed);
    }

    #[test]
    fn every_benchmark_round_trips() {
        for b in Benchmark::ALL {
            let original: Vec<DynInst> = TraceBuilder::new(b).seed(1).build().take(500).collect();
            let mut buf = Vec::new();
            write_trace(&mut buf, original.iter().copied()).unwrap();
            assert_eq!(read_trace(&buf[..]).unwrap(), original, "{b}");
        }
    }

    #[test]
    fn streaming_reader_reports_progress() {
        let original = sample(100);
        let mut buf = Vec::new();
        write_trace(&mut buf, original.iter().copied()).unwrap();
        let mut file = TraceFile::new(&buf[..]).unwrap();
        assert_eq!(file.by_ref().take(40).count(), 40);
        assert_eq!(file.instructions_read(), 40);
        assert_eq!(file.count(), 60);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = TraceFile::new(&b"NOPE\x01\x00\x00\x00"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"VPRT");
        buf.extend_from_slice(&99u32.to_le_bytes());
        let err = TraceFile::new(&buf[..]).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn truncated_record_sets_error() {
        let original = sample(10);
        let mut buf = Vec::new();
        write_trace(&mut buf, original.iter().copied()).unwrap();
        buf.truncate(buf.len() - 3);
        let mut file = TraceFile::new(&buf[..]).unwrap();
        let decoded: Vec<DynInst> = file.by_ref().collect();
        assert!(decoded.len() < 10);
        assert!(file.error().is_some());
        assert!(read_trace(&buf[..]).is_err());
    }

    #[test]
    fn file_errors_name_the_offending_path() {
        let dir = std::env::temp_dir().join("vpr_trace_file_err_test");
        std::fs::create_dir_all(&dir).unwrap();
        // Missing file: the open error names the path.
        let missing = dir.join("does_not_exist.vprt");
        let err = read_trace_file(&missing).unwrap_err();
        assert!(
            err.to_string().contains("does_not_exist.vprt"),
            "unhelpful error: {err}"
        );
        // Truncated record: the stream error names the path and record.
        let original = sample(10);
        let mut buf = Vec::new();
        write_trace(&mut buf, original.iter().copied()).unwrap();
        buf.truncate(buf.len() - 3);
        let truncated = dir.join("truncated.vprt");
        std::fs::write(&truncated, &buf).unwrap();
        let err = read_trace_file(&truncated).unwrap_err();
        assert!(
            err.to_string().contains("truncated.vprt") && err.to_string().contains("record 9"),
            "unhelpful error: {err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replayed_trace_drives_the_simulator_identically() {
        // Same result whether the simulator eats the generator or the
        // recorded file.
        let original = sample(3_000);
        let mut buf = Vec::new();
        write_trace(&mut buf, original.iter().copied()).unwrap();
        let replayed = read_trace(&buf[..]).unwrap();
        assert_eq!(original, replayed);
    }
}
