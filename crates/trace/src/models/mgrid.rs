//! `mgrid` — multigrid Poisson solver (SPECfp95 107.mgrid).
//!
//! The hot loop is a 27-point stencil: several loads per output point
//! feeding a reduction tree of FP adds, swept over grids larger than the
//! L1 — but with heavy reuse between neighbouring points, so the miss
//! rate sits below `swim`'s. More loads per point and deeper chains mean
//! more registers held per in-flight iteration: a large (+58%) but not
//! extreme improvement in the paper.

use crate::ops::{fadd, fload, fmul, fstore, iadd};
use crate::program::{LoopSpec, Program, StreamSpec};

/// Builds the mgrid model.
pub fn program() -> Program {
    const KB: u64 = 1 << 10;
    const MEG: u64 = 1 << 20;
    // Two streaming planes miss; two neighbour streams stay resident
    // (reuse of the plane loaded on the previous sweep).
    let stencil = LoopSpec {
        base_pc: 0x1_0000,
        body: vec![
            iadd(1, 1, 2),
            fload(1, 1, 0), // streaming plane: the misses
            fload(2, 1, 1), // neighbours resident from the last sweep
            fload(3, 1, 2),
            fadd(5, 1, 2),
            fadd(6, 5, 3), // reduction over the neighbours
            fmul(8, 6, 30),
            fstore(8, 1, 3),
        ],
        streams: vec![
            StreamSpec::strided(0x1000_0100, 4 * MEG, 8),
            StreamSpec::strided(0x30_0000, 4 * KB, 8),
            StreamSpec::strided(0x30_1000, 4 * KB, 8),
            StreamSpec::strided(0x3000_2100, 4 * MEG, 8),
        ],
        mean_trips: 1024.0,
    };
    // The restriction/prolongation pass: fewer loads, lighter compute.
    let transfer = LoopSpec {
        base_pc: 0x2_0000,
        body: vec![
            iadd(3, 3, 2),
            fload(10, 3, 0),
            fmul(11, 10, 28),
            fadd(12, 11, 27),
            fstore(12, 3, 1),
        ],
        streams: vec![
            StreamSpec::strided(0x4000_3500, 2 * MEG, 8),
            StreamSpec::strided(0x5000_5900, 2 * MEG, 8),
        ],
        mean_trips: 512.0,
    };
    Program {
        loops: vec![stencil, transfer],
        weights: vec![3.0, 1.0],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceGen;
    use vpr_isa::{OpClass, RegClass};

    #[test]
    fn stencil_is_load_heavy_fp() {
        let insts: Vec<_> = TraceGen::new(program(), 1).take(30_000).collect();
        let loads = insts.iter().filter(|d| d.op() == OpClass::Load).count();
        let fp_loads = insts
            .iter()
            .filter(|d| {
                d.op() == OpClass::Load
                    && d.inst().dest().is_some_and(|r| r.class() == RegClass::Fp)
            })
            .count();
        assert!(
            loads as f64 / insts.len() as f64 > 0.25,
            "stencils are load-heavy"
        );
        assert_eq!(loads, fp_loads, "all loads feed the FP file");
    }

    #[test]
    fn mixes_streaming_and_resident_accesses() {
        let insts: Vec<_> = TraceGen::new(program(), 2).take(30_000).collect();
        let big = insts
            .iter()
            .filter_map(|d| d.mem())
            .filter(|m| m.addr >= 0x100_0000)
            .count();
        let resident = insts
            .iter()
            .filter_map(|d| d.mem())
            .filter(|m| m.addr < 0x100_0000)
            .count();
        assert!(
            big > 0 && resident > 0,
            "stencil reuse keeps part of the data hot"
        );
    }
}
