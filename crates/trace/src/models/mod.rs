//! Per-benchmark synthetic workload models.
//!
//! The paper evaluates nine SPEC95 programs via Atom-instrumented Alpha
//! traces. Those traces are not reproducible here, so each benchmark is
//! replaced by a *synthetic model*: a small static program whose
//! instruction mix, dependence-chain depth, working-set size and branch
//! predictability match the published characteristics of the benchmark
//! (see DESIGN.md §4 for the substitution argument). The renaming schemes
//! under study only observe those four axes.
//!
//! Models are deliberately simple — a handful of parameterised loops — and
//! deterministic given a seed.

mod apsi;
mod compress;
mod go;
mod hydro2d;
mod li;
mod mgrid;
mod swim;
mod vortex;
mod wave5;

use crate::{Program, TraceGen};
use std::fmt;
use std::str::FromStr;

/// The SPEC95 subset evaluated in the paper (§4.1): four integer and five
/// floating-point programs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// SPECint95 `go` — game tree search: branchy, hard-to-predict integer
    /// code with small working set.
    Go,
    /// SPECint95 `li` — Lisp interpreter: pointer chasing and moderately
    /// predictable branches.
    Li,
    /// SPECint95 `compress` — dictionary compression: table lookups over a
    /// large buffer, mostly independent iterations.
    Compress,
    /// SPECint95 `vortex` — object database: predictable branches, lots of
    /// loads/stores.
    Vortex,
    /// SPECfp95 `apsi` — pollutant distribution: mixed streaming and
    /// compute loops with divisions.
    Apsi,
    /// SPECfp95 `swim` — shallow-water stencil: large-array streaming,
    /// high miss rate, abundant memory parallelism.
    Swim,
    /// SPECfp95 `mgrid` — multigrid solver: stencil sweeps over large
    /// grids, deep FP chains.
    Mgrid,
    /// SPECfp95 `hydro2d` — hydrodynamics: cache-resident, high-ILP FP.
    Hydro2d,
    /// SPECfp95 `wave5` — plasma simulation: accumulation chains that
    /// limit achievable parallelism.
    Wave5,
}

impl Benchmark {
    /// All nine benchmarks, integer first (the paper's table order).
    pub const ALL: [Benchmark; 9] = [
        Benchmark::Go,
        Benchmark::Li,
        Benchmark::Compress,
        Benchmark::Vortex,
        Benchmark::Apsi,
        Benchmark::Swim,
        Benchmark::Mgrid,
        Benchmark::Hydro2d,
        Benchmark::Wave5,
    ];

    /// The integer subset.
    pub const INTEGER: [Benchmark; 4] = [
        Benchmark::Go,
        Benchmark::Li,
        Benchmark::Compress,
        Benchmark::Vortex,
    ];

    /// The floating-point subset.
    pub const FP: [Benchmark; 5] = [
        Benchmark::Apsi,
        Benchmark::Swim,
        Benchmark::Mgrid,
        Benchmark::Hydro2d,
        Benchmark::Wave5,
    ];

    /// Lower-case benchmark name as printed in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Benchmark::Go => "go",
            Benchmark::Li => "li",
            Benchmark::Compress => "compress",
            Benchmark::Vortex => "vortex",
            Benchmark::Apsi => "apsi",
            Benchmark::Swim => "swim",
            Benchmark::Mgrid => "mgrid",
            Benchmark::Hydro2d => "hydro2d",
            Benchmark::Wave5 => "wave5",
        }
    }

    /// True for the floating-point subset.
    pub fn is_fp(&self) -> bool {
        Benchmark::FP.contains(self)
    }

    /// The static synthetic program modelling this benchmark.
    pub fn program(&self) -> Program {
        match self {
            Benchmark::Go => go::program(),
            Benchmark::Li => li::program(),
            Benchmark::Compress => compress::program(),
            Benchmark::Vortex => vortex::program(),
            Benchmark::Apsi => apsi::program(),
            Benchmark::Swim => swim::program(),
            Benchmark::Mgrid => mgrid::program(),
            Benchmark::Hydro2d => hydro2d::program(),
            Benchmark::Wave5 => wave5::program(),
        }
    }

    /// IPC the paper reports for the conventional scheme at 64 physical
    /// registers (Table 2) — the reference point our reproduction aims to
    /// approximate in *shape*, not absolute value.
    pub fn paper_conventional_ipc(&self) -> f64 {
        match self {
            Benchmark::Go => 0.73,
            Benchmark::Li => 0.98,
            Benchmark::Compress => 1.75,
            Benchmark::Vortex => 1.14,
            Benchmark::Apsi => 1.37,
            Benchmark::Swim => 1.12,
            Benchmark::Mgrid => 1.32,
            Benchmark::Hydro2d => 2.16,
            Benchmark::Wave5 => 1.64,
        }
    }

    /// IPC the paper reports for the virtual-physical scheme with
    /// write-back allocation, NRR = 32, 64 physical registers (Table 2).
    pub fn paper_vp_writeback_ipc(&self) -> f64 {
        match self {
            Benchmark::Go => 0.76,
            Benchmark::Li => 1.05,
            Benchmark::Compress => 1.84,
            Benchmark::Vortex => 1.24,
            Benchmark::Apsi => 1.76,
            Benchmark::Swim => 2.06,
            Benchmark::Mgrid => 2.09,
            Benchmark::Hydro2d => 2.24,
            Benchmark::Wave5 => 1.71,
        }
    }

    /// Table 2's percentage improvement for this benchmark.
    pub fn paper_improvement_percent(&self) -> f64 {
        (self.paper_vp_writeback_ipc() / self.paper_conventional_ipc() - 1.0) * 100.0
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown benchmark name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBenchmarkError(String);

impl fmt::Display for ParseBenchmarkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown benchmark `{}`", self.0)
    }
}

impl std::error::Error for ParseBenchmarkError {}

impl FromStr for Benchmark {
    type Err = ParseBenchmarkError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Benchmark::ALL
            .into_iter()
            .find(|b| b.name() == s)
            .ok_or_else(|| ParseBenchmarkError(s.to_owned()))
    }
}

/// Builds a deterministic synthetic trace for a benchmark.
///
/// ```
/// use vpr_trace::{Benchmark, TraceBuilder};
/// let mut trace = TraceBuilder::new(Benchmark::Swim).seed(42).build();
/// let first = trace.next().expect("traces are infinite");
/// let again = TraceBuilder::new(Benchmark::Swim).seed(42).build().next();
/// assert_eq!(Some(first), again);
/// ```
#[derive(Debug, Clone)]
pub struct TraceBuilder {
    benchmark: Benchmark,
    seed: u64,
}

impl TraceBuilder {
    /// Starts a builder for `benchmark` with the default seed (0).
    pub fn new(benchmark: Benchmark) -> Self {
        Self { benchmark, seed: 0 }
    }

    /// Sets the generator seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the infinite trace generator.
    pub fn build(&self) -> TraceGen {
        TraceGen::new(self.benchmark.program(), self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpr_isa::OpClass;

    #[test]
    fn every_model_validates_and_generates() {
        for b in Benchmark::ALL {
            let mut t = TraceBuilder::new(b).seed(1).build();
            let insts: Vec<_> = (&mut t).take(20_000).collect();
            assert_eq!(insts.len(), 20_000, "{b}: traces are infinite");
            // The committed path is coherent.
            for w in insts.windows(2) {
                assert_eq!(w[0].next_pc(), w[1].pc(), "{b}");
            }
        }
    }

    #[test]
    fn fp_benchmarks_are_fp_heavy_and_int_ones_are_not() {
        for b in Benchmark::ALL {
            let insts: Vec<_> = TraceBuilder::new(b).seed(2).build().take(30_000).collect();
            let fp_ops = insts
                .iter()
                .filter(|d| {
                    matches!(
                        d.op(),
                        OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv | OpClass::FpSqrt
                    ) || (d.op() == OpClass::Load
                        && d.inst()
                            .dest()
                            .is_some_and(|r| r.class() == vpr_isa::RegClass::Fp))
                })
                .count();
            let frac = fp_ops as f64 / insts.len() as f64;
            if b.is_fp() {
                assert!(frac > 0.3, "{b}: FP fraction {frac:.2} too low");
            } else {
                assert!(
                    frac < 0.05,
                    "{b}: FP fraction {frac:.2} too high for integer code"
                );
            }
        }
    }

    #[test]
    fn branch_density_separates_go_from_fp_codes() {
        let density = |b: Benchmark| {
            let insts: Vec<_> = TraceBuilder::new(b).seed(3).build().take(30_000).collect();
            insts
                .iter()
                .filter(|d| d.op() == OpClass::BranchCond)
                .count() as f64
                / insts.len() as f64
        };
        assert!(density(Benchmark::Go) > 2.0 * density(Benchmark::Swim));
    }

    #[test]
    fn names_round_trip() {
        for b in Benchmark::ALL {
            assert_eq!(b.name().parse::<Benchmark>().unwrap(), b);
        }
        assert!("gcc".parse::<Benchmark>().is_err());
    }

    #[test]
    fn paper_numbers_match_table2() {
        // Harmonic means of the Table 2 columns: 1.23 and 1.46 (+19%).
        let conv: Vec<f64> = Benchmark::ALL
            .iter()
            .map(|b| b.paper_conventional_ipc())
            .collect();
        let vp: Vec<f64> = Benchmark::ALL
            .iter()
            .map(|b| b.paper_vp_writeback_ipc())
            .collect();
        let hm = |v: &[f64]| v.len() as f64 / v.iter().map(|x| 1.0 / x).sum::<f64>();
        assert!((hm(&conv) - 1.23).abs() < 0.01);
        assert!((hm(&vp) - 1.46).abs() < 0.01);
        assert!((Benchmark::Swim.paper_improvement_percent() - 84.0).abs() < 1.0);
    }
}
