//! `wave5` — plasma particle simulation (SPECfp95 146.wave5).
//!
//! Like `hydro2d`, this benchmark barely improves in the paper (+4%), but
//! for a different reason: its hot loops carry *accumulation recurrences*
//! (particle charge deposition), so the critical path — not the window
//! size — bounds performance. Extra registers cannot shorten a serial
//! chain of 4-cycle FP adds. The model interleaves two independent
//! accumulator chains over cache-resident data, landing near the paper's
//! conventional IPC of 1.64 while keeping the chain-limited character.

use crate::ops::{fadd, fload, fmul, fstore, iadd};
use crate::program::{LoopSpec, Program, StreamSpec};

/// Builds the wave5 model.
pub fn program() -> Program {
    const KB: u64 = 1 << 10;
    // Charge deposition: two accumulator chains (f20, f21) interleaved;
    // all data is cache-resident, so the 4-cycle FP adds of each chain set
    // the pace.
    let deposit = LoopSpec {
        base_pc: 0x1_0000,
        body: vec![
            iadd(1, 1, 2),
            fload(1, 1, 0),
            fmul(2, 1, 30),
            fadd(20, 20, 2), // accumulator chain 1
            fload(3, 1, 1),
            fmul(4, 3, 29),
            fadd(21, 21, 4), // accumulator chain 2
        ],
        streams: vec![
            // Disjoint cache offsets (mod 16 KB) keep everything resident.
            StreamSpec::strided(0x30_0000, 6 * KB, 8),
            StreamSpec::strided(0x30_1800, 3 * KB, 8),
        ],
        mean_trips: 512.0,
    };
    // Field solve: independent per-point work, also resident.
    let solve = LoopSpec {
        base_pc: 0x2_0000,
        body: vec![
            iadd(3, 3, 2),
            fload(6, 3, 0),
            fmul(7, 6, 28),
            fadd(8, 7, 27),
            fstore(8, 3, 1),
        ],
        streams: vec![
            StreamSpec::strided(0x30_2400, 4 * KB, 8),
            StreamSpec::strided(0x30_3400, 2 * KB, 8),
        ],
        mean_trips: 512.0,
    };
    Program {
        loops: vec![deposit, solve],
        weights: vec![2.0, 1.0],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceGen;
    use vpr_isa::{LogicalReg, OpClass};

    #[test]
    fn accumulator_chains_are_present() {
        let insts: Vec<_> = TraceGen::new(program(), 1).take(20_000).collect();
        let accum = insts
            .iter()
            .filter(|d| {
                d.op() == OpClass::FpAdd
                    && d.inst().dest() == Some(LogicalReg::fp(20))
                    && d.inst().src1() == Some(LogicalReg::fp(20))
            })
            .count();
        assert!(accum > 100, "the deposition recurrence must dominate");
    }

    #[test]
    fn cache_resident_working_set() {
        let insts: Vec<_> = TraceGen::new(program(), 1).take(40_000).collect();
        let mut lines: Vec<u64> = insts
            .iter()
            .filter_map(|d| d.mem())
            .map(|m| m.addr / 32)
            .collect();
        lines.sort_unstable();
        lines.dedup();
        assert!(
            (lines.len() * 32) <= 16 * 1024,
            "working set must be resident: {} lines",
            lines.len()
        );
    }
}
