//! `hydro2d` — Navier-Stokes hydrodynamics (SPECfp95 104.hydro2d).
//!
//! In the paper this is the FP benchmark that benefits *least* (+4%): its
//! working set is effectively cache-resident during each sweep and the
//! loop bodies expose wide, shallow FP parallelism, so the conventional
//! scheme's register-limited window is already big enough to keep the FP
//! units busy (conventional IPC 2.16 — the highest in Table 2). The model
//! therefore keeps every stream inside the 16 KB cache and uses short,
//! independent bodies with few FP definitions per iteration.

use crate::ops::{fadd, fload, fmul, fstore, iadd};
use crate::program::{LoopSpec, Program, StreamSpec};

/// Builds the hydro2d model.
pub fn program() -> Program {
    const KB: u64 = 1 << 10;
    let sweep = LoopSpec {
        base_pc: 0x1_0000,
        body: vec![
            iadd(1, 1, 2),
            fload(1, 1, 0),
            fload(2, 1, 1),
            fmul(3, 1, 28),
            fadd(4, 2, 3),
            fstore(4, 1, 2),
            // Boundary-condition recurrence: one 4-cycle add per point
            // paces the sweep (hydro2d's conventional IPC sits near 2).
            fadd(6, 6, 1),
        ],
        streams: vec![
            // 2 KB tiles at disjoint cache offsets: resident after the
            // first lap.
            StreamSpec::strided(0x10_0000, 2 * KB, 8),
            StreamSpec::strided(0x10_0800, 2 * KB, 8),
            StreamSpec::strided(0x10_1000, 2 * KB, 8),
        ],
        mean_trips: 1024.0,
    };
    let flux = LoopSpec {
        base_pc: 0x2_0000,
        body: vec![
            iadd(3, 3, 2),
            fload(8, 3, 0),
            fmul(9, 8, 27),
            fadd(10, 9, 26),
            fstore(10, 3, 1),
            fadd(11, 11, 8), // same pacing recurrence
        ],
        streams: vec![
            StreamSpec::strided(0x10_1800, 2 * KB, 8),
            StreamSpec::strided(0x10_2000, 2 * KB, 8),
        ],
        mean_trips: 1024.0,
    };
    Program {
        loops: vec![sweep, flux],
        weights: vec![2.0, 1.0],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceGen;
    use vpr_isa::OpClass;

    #[test]
    fn working_set_fits_in_the_cache() {
        let insts: Vec<_> = TraceGen::new(program(), 1).take(40_000).collect();
        let mut addrs: Vec<u64> = insts
            .iter()
            .filter_map(|d| d.mem())
            .map(|m| m.addr)
            .collect();
        addrs.sort_unstable();
        addrs.dedup_by_key(|a| *a / 32); // distinct lines
        assert!(
            addrs.len() * 32 < 16 * 1024,
            "hydro2d must be cache-resident: {} lines",
            addrs.len()
        );
    }

    #[test]
    fn one_pacing_recurrence_amid_independent_work() {
        // Exactly one accumulator (the boundary recurrence) paces each
        // body; the remaining FP work is independent across iterations.
        let insts: Vec<_> = TraceGen::new(program(), 1).take(2000).collect();
        let accums = insts
            .iter()
            .filter(|d| {
                matches!(d.op(), OpClass::FpAdd | OpClass::FpMul)
                    && d.inst()
                        .dest()
                        .is_some_and(|dst| d.inst().sources().any(|s| s == dst))
            })
            .count();
        let fp_arith = insts
            .iter()
            .filter(|d| matches!(d.op(), OpClass::FpAdd | OpClass::FpMul))
            .count();
        assert!(accums > 0, "the pacing recurrence must be present");
        assert!(
            accums * 2 < fp_arith,
            "independent FP work must dominate: {accums} of {fp_arith}"
        );
    }
}
