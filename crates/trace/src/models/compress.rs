//! `compress` — LZW compression (SPECint95 129.compress).
//!
//! A tight dictionary loop: stream the input buffer, hash, probe the code
//! table, emit. Iterations are near-independent, branches follow a strong
//! bias and the table probes hit a large buffer — so the machine can
//! overlap everything and the conventional IPC is the highest of the
//! integer suite (1.75), with a small (+5%) VP gain.

use crate::ops::{br_on, iadd, iload, istore};
use crate::program::{LoopSpec, Program, StreamSpec};

/// Builds the compress model.
pub fn program() -> Program {
    const KB: u64 = 1 << 10;
    let compress_loop = LoopSpec {
        base_pc: 0x1_0000,
        body: vec![
            iadd(1, 1, 7),  // input index
            iload(3, 1, 0), // next input bytes (streaming, large buffer)
            iadd(4, 3, 3),  // hash
            iload(5, 4, 1), // table probe (resident hash table)
            iadd(6, 5, 3),
            br_on(5, 0.85, 1), // "code found" fast path, tests the probe
            istore(6, 4, 1),
            istore(6, 1, 2), // emit output (streaming)
        ],
        streams: vec![
            StreamSpec::strided(0x100_0300, 24 * KB, 2),
            StreamSpec::random(0x20_0000, 6 * KB),
            StreamSpec::strided(0x200_2b00, 128 * KB, 2),
        ],
        mean_trips: 256.0,
    };
    let output_pack = LoopSpec {
        base_pc: 0x2_0000,
        body: vec![
            iadd(8, 8, 7),
            iload(9, 8, 0),
            iadd(10, 9, 8),
            iadd(11, 10, 9),
            istore(11, 8, 1),
        ],
        streams: vec![
            StreamSpec::strided(0x20_1800, 8 * KB, 8),
            StreamSpec::strided(0x400_1d00, 64 * KB, 2),
        ],
        mean_trips: 128.0,
    };
    Program {
        loops: vec![compress_loop, output_pack],
        weights: vec![3.0, 1.0],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceGen;
    use vpr_isa::OpClass;

    #[test]
    fn branches_are_biased_and_learnable() {
        use std::collections::HashMap;
        let insts: Vec<_> = TraceGen::new(program(), 1).take(40_000).collect();
        let mut by_pc: HashMap<u64, (usize, usize)> = HashMap::new();
        for d in insts.iter().filter(|d| d.op() == OpClass::BranchCond) {
            let e = by_pc.entry(d.pc()).or_default();
            if d.branch().unwrap().taken {
                e.0 += 1;
            } else {
                e.1 += 1;
            }
        }
        let (mut best, mut total) = (0usize, 0usize);
        for (t, n) in by_pc.values() {
            best += t.max(n);
            total += t + n;
        }
        assert!(
            best as f64 / total as f64 > 0.85,
            "compress branches are predictable"
        );
    }

    #[test]
    fn mixes_streaming_and_table_lookups() {
        let insts: Vec<_> = TraceGen::new(program(), 2).take(30_000).collect();
        let stream_loads = insts
            .iter()
            .filter_map(|d| d.mem())
            .filter(|m| m.addr >= 0x100_0000)
            .count();
        let table_loads = insts
            .iter()
            .filter_map(|d| d.mem())
            .filter(|m| m.addr < 0x100_0000)
            .count();
        assert!(stream_loads > 0 && table_loads > 0);
    }
}
