//! `li` — XLISP interpreter (SPECint95 130.li).
//!
//! Interpreter dispatch plus cons-cell traversal: *pointer chasing*, where
//! each load's address depends on the previous load's result. The chain
//! serialises the memory accesses, keeping IPC near 1 regardless of the
//! window, with moderately predictable branches on top. The heap working
//! set is small enough to stay mostly cache-resident. The paper sees +7%.

use crate::ops::{br_on, iadd, iload, istore};
use crate::program::{LoopSpec, Program, StreamSpec};

/// Builds the li model.
pub fn program() -> Program {
    const KB: u64 = 1 << 10;
    // List traversal: `r2 <- [r2]` — the destination feeds the next
    // iteration's base, a true recurrence through memory.
    let traverse = LoopSpec {
        base_pc: 0x1_0000,
        body: vec![
            iload(2, 2, 0), // car/cdr chase (dest = base: serialised)
            iadd(3, 2, 5),
            br_on(3, 0.25, 1), // type check on the fetched cell
            iadd(4, 3, 2),
            iload(6, 5, 2), // independent payload access
            iadd(7, 6, 5),
            istore(4, 2, 1),
        ],
        streams: vec![
            // Disjoint cache offsets (mod 16 KB): no aliasing among the
            // hot regions.
            StreamSpec::random(0x10_0000, 6 * KB),
            StreamSpec::random(0x10_1800, KB),
            StreamSpec::random(0x10_2c00, 2 * KB),
        ],
        mean_trips: 24.0,
    };
    // Eval dispatch: branchier, short integer blocks.
    let eval = LoopSpec {
        base_pc: 0x2_0000,
        body: vec![
            iload(6, 2, 0),
            iadd(7, 6, 2),
            br_on(7, 0.3, 2),
            iadd(8, 7, 6),
            iadd(9, 8, 7),
            br_on(9, 0.6, 1),
            iadd(10, 9, 6),
        ],
        streams: vec![StreamSpec::random(0x10_2000, 3 * KB)],
        mean_trips: 10.0,
    };
    // Garbage-collection sweep: strided over a larger heap region, rare.
    let gc_sweep = LoopSpec {
        base_pc: 0x3_0000,
        body: vec![
            iadd(11, 11, 5),
            iload(12, 11, 0),
            iadd(13, 12, 11),
            istore(13, 11, 1),
        ],
        streams: vec![
            StreamSpec::strided(0x100_0500, 64 * KB, 32),
            StreamSpec::strided(0x120_2900, 64 * KB, 32),
        ],
        mean_trips: 32.0,
    };
    Program {
        loops: vec![traverse, eval, gc_sweep],
        weights: vec![5.0, 4.0, 0.15],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceGen;
    use vpr_isa::{LogicalReg, OpClass};

    #[test]
    fn pointer_chase_loads_feed_their_own_base() {
        let insts: Vec<_> = TraceGen::new(program(), 1).take(20_000).collect();
        let chases = insts
            .iter()
            .filter(|d| {
                d.op() == OpClass::Load
                    && d.inst().dest() == Some(LogicalReg::int(2))
                    && d.inst().src1() == Some(LogicalReg::int(2))
            })
            .count();
        assert!(chases > 500, "the chase recurrence must dominate: {chases}");
    }

    #[test]
    fn moderate_branch_density() {
        let insts: Vec<_> = TraceGen::new(program(), 2).take(30_000).collect();
        let density = insts
            .iter()
            .filter(|d| d.op() == OpClass::BranchCond)
            .count() as f64
            / insts.len() as f64;
        assert!((0.1..0.35).contains(&density), "density {density:.2}");
    }

    #[test]
    fn interpreter_heap_is_mostly_resident() {
        let insts: Vec<_> = TraceGen::new(program(), 3).take(30_000).collect();
        let hot = insts
            .iter()
            .filter_map(|d| d.mem())
            .filter(|m| m.addr < 0x100_0000)
            .count();
        let cold = insts
            .iter()
            .filter_map(|d| d.mem())
            .filter(|m| m.addr >= 0x100_0000)
            .count();
        assert!(hot > 5 * cold, "GC traffic must stay rare: {hot} vs {cold}");
    }
}
