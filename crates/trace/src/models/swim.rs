//! `swim` — shallow-water equation stencil (SPECfp95 102.swim).
//!
//! The real program streams over several ~1 MB arrays with unit stride,
//! doing a dozen FP operations per point. What matters to the renaming
//! study: a high L1 miss rate with abundant *memory-level parallelism*
//! (iterations are independent), and enough FP definitions per point that
//! the conventional scheme's 32 spare FP registers cover only a handful of
//! in-flight iterations while the 128-entry window could hold three times
//! as many. Performance is then proportional to how many misses the
//! machine overlaps — the paper reports the largest improvement here
//! (+84%).

use crate::ops::{fadd, fload, fmul, fstore, iadd};
use crate::program::{LoopSpec, Program, StreamSpec};

/// Builds the swim model.
pub fn program() -> Program {
    const MEG: u64 = 1 << 20;
    // Unit-stride (8-byte) walks over three source arrays and one
    // destination array, each 2 MB: every 4th access starts a new 32-byte
    // line, so roughly 25% of accesses miss. Eight FP definitions per
    // point (3 loads + 5 arithmetic) pressure the FP file hard.
    let main_sweep = LoopSpec {
        base_pc: 0x1_0000,
        body: vec![
            iadd(1, 1, 2), // index update
            fload(1, 1, 0),
            fload(2, 1, 1),
            fload(3, 1, 2),
            fmul(4, 1, 30),
            fmul(5, 2, 29),
            fadd(6, 4, 5),
            fadd(7, 3, 28),
            fadd(8, 6, 7),
            fstore(8, 1, 3),
        ],
        streams: vec![
            StreamSpec::strided(0x1000_0300, 2 * MEG, 8),
            StreamSpec::strided(0x2000_8700, 2 * MEG, 8),
            StreamSpec::strided(0x2800_4100, 2 * MEG, 8),
            StreamSpec::strided(0x3000_4b00, 2 * MEG, 8),
        ],
        mean_trips: 2048.0,
    };
    // The velocity update: same structure over different arrays.
    let update_sweep = LoopSpec {
        base_pc: 0x2_0000,
        body: vec![
            iadd(3, 3, 2),
            fload(10, 3, 0),
            fload(11, 3, 1),
            fmul(12, 10, 27),
            fadd(13, 11, 26),
            fadd(14, 12, 13),
            fstore(14, 3, 2),
        ],
        streams: vec![
            StreamSpec::strided(0x4000_1900, 2 * MEG, 8),
            StreamSpec::strided(0x4800_3500, 2 * MEG, 8),
            StreamSpec::strided(0x5000_6d00, 2 * MEG, 8),
        ],
        mean_trips: 2048.0,
    };
    Program {
        loops: vec![main_sweep, update_sweep],
        weights: vec![2.0, 1.0],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceGen;
    use vpr_isa::OpClass;

    #[test]
    fn streaming_loads_have_unit_stride() {
        let insts: Vec<_> = TraceGen::new(program(), 1).take(120_000).collect();
        let loads: Vec<u64> = insts
            .iter()
            .filter(|d| d.op() == OpClass::Load && d.pc() == 0x1_0004)
            .map(|d| d.mem().unwrap().addr)
            .collect();
        assert!(loads.len() > 300);
        let strides_ok = loads.windows(2).filter(|w| w[1] == w[0] + 8).count();
        assert!(
            strides_ok as f64 > 0.95 * (loads.len() - 1) as f64,
            "stream should walk sequentially"
        );
    }

    #[test]
    fn branches_are_rare_and_loopy() {
        let insts: Vec<_> = TraceGen::new(program(), 1).take(20_000).collect();
        let branches = insts
            .iter()
            .filter(|d| d.op() == OpClass::BranchCond)
            .count();
        let taken = insts
            .iter()
            .filter(|d| d.op() == OpClass::BranchCond && d.branch().unwrap().taken)
            .count();
        assert!(branches < insts.len() / 5);
        assert!(taken as f64 / branches as f64 > 0.99);
    }

    #[test]
    fn fp_definitions_dominate_the_body() {
        let insts: Vec<_> = TraceGen::new(program(), 2).take(20_000).collect();
        let fp_defs = insts
            .iter()
            .filter(|d| {
                d.inst()
                    .dest()
                    .is_some_and(|r| r.class() == vpr_isa::RegClass::Fp)
            })
            .count();
        assert!(
            fp_defs as f64 / insts.len() as f64 > 0.6,
            "swim pressures the FP file"
        );
    }
}
