//! `go` — game of Go position evaluator (SPECint95 099.go).
//!
//! Famously branch-dominated: short basic blocks, data-dependent branches
//! the 2-bit BHT cannot learn, a small resident working set and shallow
//! integer chains. Mispredictions keep the instruction window nearly
//! empty, so register pressure is low and the paper sees only +4%. The
//! conventional IPC to approximate is 0.73 — the lowest of the suite.

use crate::ops::{br_on, iadd, iload, istore};
use crate::program::{LoopSpec, Program, StreamSpec};

/// Builds the go model.
pub fn program() -> Program {
    const KB: u64 = 1 << 10;
    // Board scan with evaluation: a branch every ~4 instructions, half of
    // them effectively random.
    let evaluate = LoopSpec {
        base_pc: 0x1_0000,
        body: vec![
            iload(3, 1, 0),
            iadd(4, 3, 5),
            br_on(4, 0.45, 2), // tests the loaded value: slow to resolve
            iadd(5, 4, 3),
            iadd(6, 5, 4),
            br_on(6, 0.5, 1),
            istore(6, 1, 1),
            iadd(1, 1, 7),
            br_on(5, 0.5, 1),
            iadd(8, 6, 3),
        ],
        streams: vec![
            StreamSpec::random(0x10_0000, 4 * KB),
            StreamSpec::random(0x10_1000, 2 * KB),
        ],
        mean_trips: 12.0,
    };
    // Pattern matcher: slightly longer blocks, still unpredictable.
    let pattern = LoopSpec {
        base_pc: 0x2_0000,
        body: vec![
            iload(9, 2, 0),
            iadd(10, 9, 2),
            br_on(10, 0.5, 3),
            iadd(11, 10, 9),
            iadd(12, 11, 10),
            iadd(2, 2, 7),
        ],
        streams: vec![StreamSpec::random(0x10_1800, 4 * KB)],
        mean_trips: 8.0,
    };
    Program {
        loops: vec![evaluate, pattern],
        weights: vec![2.0, 1.0],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceGen;
    use vpr_isa::OpClass;

    #[test]
    fn branch_every_few_instructions() {
        let insts: Vec<_> = TraceGen::new(program(), 1).take(30_000).collect();
        let branches = insts
            .iter()
            .filter(|d| d.op() == OpClass::BranchCond)
            .count();
        let density = branches as f64 / insts.len() as f64;
        assert!(
            (0.15..0.45).contains(&density),
            "go is branch-dominated: density {density:.2}"
        );
    }

    #[test]
    fn branches_are_genuinely_unpredictable() {
        // A static per-PC majority predictor (the best a 2-bit counter can
        // converge to) should do poorly on the data-dependent branches.
        use std::collections::HashMap;
        let insts: Vec<_> = TraceGen::new(program(), 2).take(60_000).collect();
        let mut by_pc: HashMap<u64, (usize, usize)> = HashMap::new();
        for d in insts.iter().filter(|d| d.op() == OpClass::BranchCond) {
            let e = by_pc.entry(d.pc()).or_default();
            if d.branch().unwrap().taken {
                e.0 += 1;
            } else {
                e.1 += 1;
            }
        }
        let (mut best, mut total) = (0usize, 0usize);
        for (t, n) in by_pc.values() {
            best += t.max(n);
            total += t + n;
        }
        let majority_accuracy = best as f64 / total as f64;
        assert!(
            majority_accuracy < 0.85,
            "too predictable for go: {majority_accuracy:.2}"
        );
    }

    #[test]
    fn integer_only() {
        let insts: Vec<_> = TraceGen::new(program(), 3).take(10_000).collect();
        assert!(insts.iter().all(|d| !matches!(
            d.op(),
            OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv | OpClass::FpSqrt
        )));
    }
}
