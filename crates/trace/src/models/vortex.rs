//! `vortex` — object-oriented database (SPECint95 147.vortex).
//!
//! Call-heavy, memory-rich integer code with highly predictable branches:
//! object field loads, validations, and stores of updated records plus
//! register save/restore traffic. Its appetite for in-flight loads and
//! stores gives it the biggest integer improvement in the paper (+9%).

use crate::ops::{br_on, iadd, iload, istore};
use crate::program::{LoopSpec, Program, StreamSpec};

/// Builds the vortex model.
pub fn program() -> Program {
    const KB: u64 = 1 << 10;
    // Object traversal + field updates over a heap bigger than the L1.
    let object_walk = LoopSpec {
        base_pc: 0x1_0000,
        body: vec![
            iadd(1, 1, 7),
            iload(3, 1, 0), // object header (streaming heap walk)
            iload(4, 3, 1), // field access (resident index)
            iadd(5, 4, 3),
            br_on(5, 0.92, 1), // validation almost always passes
            iadd(6, 5, 4),
            istore(5, 1, 2), // updated record
            istore(6, 1, 3), // log entry
        ],
        streams: vec![
            StreamSpec::strided(0x100_0300, 96 * KB, 4),
            StreamSpec::random(0x10_0000, 6 * KB),
            StreamSpec::strided(0x200_2b00, 96 * KB, 4),
            StreamSpec::strided(0x300_0f00, 32 * KB, 4),
        ],
        mean_trips: 96.0,
    };
    // Call prologue/epilogue traffic: bursts of stack stores and loads.
    let call_frame = LoopSpec {
        base_pc: 0x2_0000,
        body: vec![
            istore(8, 2, 0),
            istore(9, 2, 0),
            istore(10, 2, 0),
            iadd(11, 8, 9),
            iadd(12, 11, 10),
            iload(13, 2, 0),
            iload(14, 2, 0),
            iadd(2, 2, 7),
        ],
        streams: vec![StreamSpec::strided(0x10_1800, 4 * KB, 8)],
        mean_trips: 6.0,
    };
    Program {
        loops: vec![object_walk, call_frame],
        weights: vec![3.0, 2.0],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceGen;
    use vpr_isa::OpClass;

    #[test]
    fn store_rich_mix() {
        let insts: Vec<_> = TraceGen::new(program(), 1).take(30_000).collect();
        let stores = insts.iter().filter(|d| d.op() == OpClass::Store).count();
        let frac = stores as f64 / insts.len() as f64;
        assert!(frac > 0.15, "vortex writes a lot: {frac:.2}");
    }

    #[test]
    fn branches_highly_predictable() {
        let insts: Vec<_> = TraceGen::new(program(), 2).take(40_000).collect();
        let branches: Vec<bool> = insts
            .iter()
            .filter(|d| d.op() == OpClass::BranchCond && d.pc() == 0x1_0010)
            .map(|d| d.branch().unwrap().taken)
            .collect();
        let taken = branches.iter().filter(|&&t| t).count();
        assert!(
            taken as f64 / branches.len() as f64 > 0.85,
            "validation branch is biased"
        );
    }
}
