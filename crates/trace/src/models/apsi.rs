//! `apsi` — mesoscale pollutant transport (SPECfp95 141.apsi).
//!
//! A middle-of-the-road FP code: part streaming over large arrays (like a
//! gentler `swim`), part cache-resident computation with occasional
//! divides whose long latency parks dependent instructions in the window.
//! The paper reports a solid +28%.

use crate::ops::{fadd, fdiv, fload, fmul, fstore, iadd};
use crate::program::{LoopSpec, Program, StreamSpec};

/// Builds the apsi model.
pub fn program() -> Program {
    const KB: u64 = 1 << 10;
    const MEG: u64 = 1 << 20;
    // Advection sweep: streaming with a moderate miss rate.
    let advect = LoopSpec {
        base_pc: 0x1_0000,
        body: vec![
            iadd(1, 1, 2),
            fload(1, 1, 0),
            fload(2, 1, 1),
            fmul(3, 1, 30),
            fadd(4, 3, 2),
            fstore(4, 1, 2),
        ],
        streams: vec![
            StreamSpec::strided(0x1000_0500, MEG, 8),
            StreamSpec::strided(0x2000_2900, MEG, 8),
            StreamSpec::strided(0x3000_4d00, MEG, 8),
        ],
        mean_trips: 512.0,
    };
    // Vertical diffusion: cache-resident with a divide in the recurrence —
    // the classic long-latency producer that makes decode-time register
    // allocation wasteful (§3.1's motivating example is exactly
    // load/fdiv/fmul/fadd).
    let diffuse = LoopSpec {
        base_pc: 0x2_0000,
        body: vec![
            iadd(3, 3, 2),
            fload(5, 3, 0),
            fdiv(6, 5, 28),
            fmul(7, 6, 29),
            fadd(8, 7, 27),
            fstore(8, 3, 1),
        ],
        streams: vec![
            StreamSpec::strided(0x40_0000, 6 * KB, 8),
            StreamSpec::strided(0x40_1800, 6 * KB, 8),
        ],
        mean_trips: 256.0,
    };
    Program {
        loops: vec![advect, diffuse],
        weights: vec![2.0, 1.0],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceGen;
    use vpr_isa::OpClass;

    #[test]
    fn contains_divides_but_not_too_many() {
        let insts: Vec<_> = TraceGen::new(program(), 1).take(30_000).collect();
        let divs = insts.iter().filter(|d| d.op() == OpClass::FpDiv).count();
        let frac = divs as f64 / insts.len() as f64;
        assert!(frac > 0.01, "apsi has divide recurrences");
        assert!(frac < 0.10, "divides are a small fraction of the mix");
    }

    #[test]
    fn mixes_missy_and_resident_phases() {
        let insts: Vec<_> = TraceGen::new(program(), 2).take(60_000).collect();
        let big = insts
            .iter()
            .filter_map(|d| d.mem())
            .filter(|m| m.addr >= 0x1000_0000)
            .count();
        let small = insts
            .iter()
            .filter_map(|d| d.mem())
            .filter(|m| m.addr < 0x1000_0000)
            .count();
        assert!(big > 0 && small > 0, "both phases must appear");
    }
}
