//! # vpr-trace — synthetic SPEC95-like workload generators
//!
//! The paper drives its simulator with Atom-instrumented Alpha traces of
//! nine SPEC95 benchmarks. Those traces cannot be regenerated here, so
//! this crate provides the substitution described in DESIGN.md §4:
//! deterministic synthetic models, one per benchmark, that reproduce the
//! four workload properties the renaming schemes are sensitive to —
//! instruction mix, dependence-chain depth, working-set size (cache-miss
//! exposure) and branch predictability.
//!
//! * [`Benchmark`] — the nine-program suite, with the paper's reference
//!   IPC numbers attached;
//! * [`TraceBuilder`] → [`TraceGen`] — an infinite, deterministic
//!   [`DynInst`](vpr_isa::DynInst) iterator for a benchmark;
//! * [`Program`]/[`LoopSpec`]/[`SynthOp`] — the building blocks, public so
//!   users can model their own workloads;
//! * [`paper_example_chain`] — the §3.1 motivating code;
//! * [`write_trace`] / [`TraceFile`] — record any stream to a compact
//!   binary file and replay it later (the repeatability role Atom traces
//!   played in the paper).
//!
//! ## Example
//!
//! ```
//! use vpr_isa::OpClass;
//! use vpr_trace::{Benchmark, TraceBuilder};
//!
//! let mut swim = TraceBuilder::new(Benchmark::Swim).seed(7).build();
//! let window: Vec<_> = (&mut swim).take(1000).collect();
//! assert!(window.iter().any(|d| d.op() == OpClass::FpMul));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gen;
mod models;
pub mod ops;
mod paper_example;
mod program;
mod trace_file;

pub use gen::TraceGen;
pub use models::{Benchmark, ParseBenchmarkError, TraceBuilder};
pub use paper_example::{paper_example_chain, paper_example_trace};
pub use program::{LoopSpec, Program, StreamKind, StreamSpec, SynthOp};
pub use trace_file::{open_trace, read_trace, read_trace_file, write_trace, TraceFile};
