//! Terse constructors for synthetic loop bodies.
//!
//! Benchmark models build their bodies from these helpers; register
//! numbers are plain `usize` indices into the integer (`r`) or FP (`f`)
//! file.

use crate::program::SynthOp;
use vpr_isa::{Inst, LogicalReg, OpClass};

/// `load f<dest>, [stream]` with base register `r<base>`.
pub fn fload(dest: usize, base: usize, stream: usize) -> SynthOp {
    SynthOp::Load {
        inst: Inst::new(OpClass::Load)
            .with_dest(LogicalReg::fp(dest))
            .with_src1(LogicalReg::int(base)),
        stream,
    }
}

/// `load r<dest>, [stream]` with base register `r<base>`.
pub fn iload(dest: usize, base: usize, stream: usize) -> SynthOp {
    SynthOp::Load {
        inst: Inst::new(OpClass::Load)
            .with_dest(LogicalReg::int(dest))
            .with_src1(LogicalReg::int(base)),
        stream,
    }
}

/// `store [stream], f<data>` with base register `r<base>`.
pub fn fstore(data: usize, base: usize, stream: usize) -> SynthOp {
    SynthOp::Store {
        inst: Inst::new(OpClass::Store)
            .with_src1(LogicalReg::fp(data))
            .with_src2(LogicalReg::int(base)),
        stream,
    }
}

/// `store [stream], r<data>` with base register `r<base>`.
pub fn istore(data: usize, base: usize, stream: usize) -> SynthOp {
    SynthOp::Store {
        inst: Inst::new(OpClass::Store)
            .with_src1(LogicalReg::int(data))
            .with_src2(LogicalReg::int(base)),
        stream,
    }
}

fn fp3(op: OpClass, d: usize, a: usize, b: usize) -> SynthOp {
    SynthOp::Op(
        Inst::new(op)
            .with_dest(LogicalReg::fp(d))
            .with_src1(LogicalReg::fp(a))
            .with_src2(LogicalReg::fp(b)),
    )
}

fn int3(op: OpClass, d: usize, a: usize, b: usize) -> SynthOp {
    SynthOp::Op(
        Inst::new(op)
            .with_dest(LogicalReg::int(d))
            .with_src1(LogicalReg::int(a))
            .with_src2(LogicalReg::int(b)),
    )
}

/// `fadd f<d>, f<a>, f<b>`.
pub fn fadd(d: usize, a: usize, b: usize) -> SynthOp {
    fp3(OpClass::FpAdd, d, a, b)
}

/// `fmul f<d>, f<a>, f<b>`.
pub fn fmul(d: usize, a: usize, b: usize) -> SynthOp {
    fp3(OpClass::FpMul, d, a, b)
}

/// `fdiv f<d>, f<a>, f<b>`.
pub fn fdiv(d: usize, a: usize, b: usize) -> SynthOp {
    fp3(OpClass::FpDiv, d, a, b)
}

/// `fsqrt f<d>, f<a>`.
pub fn fsqrt(d: usize, a: usize) -> SynthOp {
    SynthOp::Op(
        Inst::new(OpClass::FpSqrt)
            .with_dest(LogicalReg::fp(d))
            .with_src1(LogicalReg::fp(a)),
    )
}

/// `add r<d>, r<a>, r<b>` (any simple integer ALU op).
pub fn iadd(d: usize, a: usize, b: usize) -> SynthOp {
    int3(OpClass::IntAlu, d, a, b)
}

/// `mul r<d>, r<a>, r<b>`.
pub fn imul(d: usize, a: usize, b: usize) -> SynthOp {
    int3(OpClass::IntMul, d, a, b)
}

/// `div r<d>, r<a>, r<b>`.
pub fn idiv(d: usize, a: usize, b: usize) -> SynthOp {
    int3(OpClass::IntDiv, d, a, b)
}

/// A conditional branch that resolves on its own (no source operand):
/// taken with probability `p`, skipping `skip` body slots when taken.
pub fn br(p: f64, skip: usize) -> SynthOp {
    SynthOp::CondBranch {
        taken_prob: p,
        skip,
        src: None,
    }
}

/// A data-dependent conditional branch testing `r<src>`: it cannot resolve
/// until that register's producer executes, so a misprediction costs the
/// producer chain's latency on top of the redirect.
pub fn br_on(src: usize, p: f64, skip: usize) -> SynthOp {
    SynthOp::CondBranch {
        taken_prob: p,
        skip,
        src: Some(src),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_build_expected_shapes() {
        match fload(2, 30, 0) {
            SynthOp::Load { inst, stream } => {
                assert_eq!(inst.op(), OpClass::Load);
                assert_eq!(inst.dest(), Some(LogicalReg::fp(2)));
                assert_eq!(stream, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
        match fstore(3, 30, 1) {
            SynthOp::Store { inst, stream } => {
                assert_eq!(inst.op(), OpClass::Store);
                assert_eq!(inst.src1(), Some(LogicalReg::fp(3)));
                assert_eq!(stream, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        match fdiv(1, 2, 3) {
            SynthOp::Op(inst) => assert_eq!(inst.op(), OpClass::FpDiv),
            other => panic!("unexpected {other:?}"),
        }
        match br(0.3, 2) {
            SynthOp::CondBranch {
                taken_prob,
                skip,
                src,
            } => {
                assert_eq!(taken_prob, 0.3);
                assert_eq!(skip, 2);
                assert_eq!(src, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        match br_on(5, 0.5, 1) {
            SynthOp::CondBranch { src, .. } => assert_eq!(src, Some(5)),
            other => panic!("unexpected {other:?}"),
        }
    }
}
