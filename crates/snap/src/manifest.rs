//! The `checkpoints.json` manifest of a checkpoint directory.
//!
//! A checkpoint directory holds `.vprsnap` files — serialised [`Snapshot`]
//! envelopes — plus one `checkpoints.json` describing every artefact:
//! which workload/configuration produced it, where in the committed
//! instruction stream it stands, the FNV-1a hash of the configuration it
//! was taken under, and the payload checksum of the file it points at.
//!
//! The manifest is the staleness gate: a loader looks an artefact up by
//! its experiment key ([`CheckpointKey`]), re-derives the configuration
//! hash from the configuration it is *about* to simulate, and rejects the
//! entry on any mismatch ([`ManifestError::StaleConfig`]) — a checkpoint
//! written under a different machine description, trace seed, or snapshot
//! format version is refused at load rather than silently reused. The
//! payload checksum likewise ties the manifest row to the exact bytes on
//! disk, so a regenerated `.vprsnap` with a stale manifest row (or vice
//! versa) is caught before a restore is attempted.
//!
//! The JSON schema (`vpr-snap-checkpoints/v1`) is hand-rolled like every
//! other artefact in this workspace (the build environment has no serde);
//! a minimal parser for exactly that subset of JSON lives here too.
//!
//! [`Snapshot`]: crate::Snapshot

use crate::FORMAT_VERSION;
use std::fmt;
use std::path::Path;

/// The experiment coordinates a checkpoint is filed under.
///
/// Two checkpoints are interchangeable only when **every** field agrees;
/// the benchmark and scheme are the human-readable labels the experiment
/// harness already uses in its JSON artefacts (e.g. `"swim"`,
/// `"vp-wb-nrr32"`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointKey {
    /// Workload name (`Benchmark::name`).
    pub benchmark: String,
    /// Renaming-scheme label (`scheme_label`).
    pub scheme: String,
    /// Physical registers per class.
    pub physical_regs: u64,
    /// Trace-generator seed.
    pub seed: u64,
    /// L1 miss penalty in cycles.
    pub miss_penalty: u64,
    /// Warm-up length the checkpoint sits at the end of (committed
    /// instructions; for interval checkpoints, the warm-up of the run the
    /// serial pass started from).
    pub warmup: u64,
    /// Checkpoint kind: `"warm"` (one per configuration, at the end of
    /// warm-up) or `"interval"` (one per sampling-interval start).
    pub kind: String,
    /// Target committed-instruction position of the checkpoint (equals
    /// `warmup` for warm checkpoints; the interval start otherwise).
    pub target: u64,
}

/// One manifest row: a [`CheckpointKey`] plus the provenance needed to
/// validate the artefact it names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// The experiment coordinates.
    pub key: CheckpointKey,
    /// File name of the `.vprsnap` artefact, relative to the manifest.
    pub file: String,
    /// Achieved committed-instruction count at the snapshot (a run may
    /// overshoot its target by up to commit-width − 1).
    pub committed: u64,
    /// Machine cycle at the snapshot.
    pub cycle: u64,
    /// Trace-generator cursor (instructions emitted, including in-flight
    /// ones not yet committed) — the stream position the restore resumes
    /// from.
    pub trace_cursor: u64,
    /// FNV-1a hash of the serialised simulator configuration + workload
    /// identity the checkpoint was taken under.
    pub config_hash: u64,
    /// FNV-1a checksum of the artefact's snapshot payload (must match both
    /// the envelope on disk and the manifest to be loadable).
    pub payload_checksum: u64,
    /// Snapshot [`FORMAT_VERSION`] the artefact was written with.
    pub format_version: u32,
}

/// Why a manifest could not be read or an entry could not be used.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ManifestError {
    /// The manifest file is not parseable as the expected schema.
    Parse(String),
    /// The manifest names a schema this build does not understand.
    Schema(String),
    /// No entry matches the requested key.
    NotFound(String),
    /// An entry exists but was written under a different configuration.
    StaleConfig {
        /// Hash recorded in the manifest.
        recorded: u64,
        /// Hash derived from the configuration about to run.
        expected: u64,
    },
    /// An entry exists but was written by a different snapshot format.
    StaleFormat {
        /// Version recorded in the manifest.
        recorded: u32,
        /// Version this build writes.
        expected: u32,
    },
    /// The artefact's payload checksum disagrees with the manifest row.
    ChecksumMismatch {
        /// Checksum recorded in the manifest.
        recorded: u64,
        /// Checksum of the payload actually on disk.
        actual: u64,
    },
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManifestError::Parse(what) => write!(f, "checkpoints.json: {what}"),
            ManifestError::Schema(s) => write!(f, "unsupported manifest schema {s:?}"),
            ManifestError::NotFound(key) => write!(f, "no checkpoint for {key}"),
            ManifestError::StaleConfig { recorded, expected } => write!(
                f,
                "stale checkpoint: manifest config hash {recorded:#018x} does not match \
                 the current configuration ({expected:#018x}) — regenerate with `checkpoint create`"
            ),
            ManifestError::StaleFormat { recorded, expected } => write!(
                f,
                "stale checkpoint: written by snapshot format v{recorded}, this build is v{expected}"
            ),
            ManifestError::ChecksumMismatch { recorded, actual } => write!(
                f,
                "checkpoint file does not match its manifest row \
                 (payload checksum {actual:#018x}, manifest says {recorded:#018x})"
            ),
        }
    }
}

impl std::error::Error for ManifestError {}

/// The parsed `checkpoints.json` of one checkpoint directory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    /// All recorded artefacts, in creation order.
    pub entries: Vec<ManifestEntry>,
}

/// Schema identifier written into (and required of) every manifest.
pub const MANIFEST_SCHEMA: &str = "vpr-snap-checkpoints/v1";

/// File name of the manifest inside a checkpoint directory.
pub const MANIFEST_FILE: &str = "checkpoints.json";

impl Manifest {
    /// Looks an entry up by key.
    pub fn find(&self, key: &CheckpointKey) -> Option<&ManifestEntry> {
        self.entries.iter().find(|e| &e.key == key)
    }

    /// Inserts or replaces the entry for `entry.key`.
    pub fn upsert(&mut self, entry: ManifestEntry) {
        if let Some(slot) = self.entries.iter_mut().find(|e| e.key == entry.key) {
            *slot = entry;
        } else {
            self.entries.push(entry);
        }
    }

    /// Validates an entry against the configuration about to run and the
    /// snapshot that was just read from disk.
    ///
    /// # Errors
    ///
    /// [`ManifestError::StaleConfig`] / [`ManifestError::StaleFormat`] /
    /// [`ManifestError::ChecksumMismatch`] as appropriate.
    pub fn validate(
        entry: &ManifestEntry,
        expected_config_hash: u64,
        payload_checksum: u64,
    ) -> Result<(), ManifestError> {
        if entry.format_version != FORMAT_VERSION {
            return Err(ManifestError::StaleFormat {
                recorded: entry.format_version,
                expected: FORMAT_VERSION,
            });
        }
        if entry.config_hash != expected_config_hash {
            return Err(ManifestError::StaleConfig {
                recorded: entry.config_hash,
                expected: expected_config_hash,
            });
        }
        if entry.payload_checksum != payload_checksum {
            return Err(ManifestError::ChecksumMismatch {
                recorded: entry.payload_checksum,
                actual: payload_checksum,
            });
        }
        Ok(())
    }

    /// Renders the manifest as `vpr-snap-checkpoints/v1` JSON.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "{{\n  \"schema\": \"{MANIFEST_SCHEMA}\",");
        s.push_str("  \"checkpoints\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"benchmark\": \"{}\", \"scheme\": \"{}\", \"physical_regs\": {}, \
                 \"seed\": {}, \"miss_penalty\": {}, \"warmup\": {}, \"kind\": \"{}\", \
                 \"target\": {}, \"file\": \"{}\", \"committed\": {}, \"cycle\": {}, \
                 \"trace_cursor\": {}, \"config_hash\": {}, \"payload_checksum\": {}, \
                 \"format_version\": {}}}",
                e.key.benchmark,
                e.key.scheme,
                e.key.physical_regs,
                e.key.seed,
                e.key.miss_penalty,
                e.key.warmup,
                e.key.kind,
                e.key.target,
                e.file,
                e.committed,
                e.cycle,
                e.trace_cursor,
                e.config_hash,
                e.payload_checksum,
                e.format_version
            );
            s.push_str(if i + 1 < self.entries.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parses a manifest previously written by [`Manifest::to_json`].
    ///
    /// # Errors
    ///
    /// [`ManifestError::Parse`] on malformed JSON,
    /// [`ManifestError::Schema`] on an unknown schema string.
    pub fn from_json(text: &str) -> Result<Self, ManifestError> {
        let value = json::parse(text).map_err(ManifestError::Parse)?;
        let obj = value
            .as_object()
            .ok_or_else(|| ManifestError::Parse("top level is not an object".into()))?;
        let schema = obj
            .get("schema")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| ManifestError::Parse("missing schema".into()))?;
        if schema != MANIFEST_SCHEMA {
            return Err(ManifestError::Schema(schema.to_string()));
        }
        let rows = obj
            .get("checkpoints")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| ManifestError::Parse("missing checkpoints array".into()))?;
        let mut entries = Vec::with_capacity(rows.len());
        for row in rows {
            let row = row
                .as_object()
                .ok_or_else(|| ManifestError::Parse("checkpoint row is not an object".into()))?;
            let str_field = |name: &str| -> Result<String, ManifestError> {
                row.get(name)
                    .and_then(JsonValue::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| ManifestError::Parse(format!("missing string field {name}")))
            };
            let num_field = |name: &str| -> Result<u64, ManifestError> {
                row.get(name)
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| ManifestError::Parse(format!("missing numeric field {name}")))
            };
            entries.push(ManifestEntry {
                key: CheckpointKey {
                    benchmark: str_field("benchmark")?,
                    scheme: str_field("scheme")?,
                    physical_regs: num_field("physical_regs")?,
                    seed: num_field("seed")?,
                    miss_penalty: num_field("miss_penalty")?,
                    warmup: num_field("warmup")?,
                    kind: str_field("kind")?,
                    target: num_field("target")?,
                },
                file: str_field("file")?,
                committed: num_field("committed")?,
                cycle: num_field("cycle")?,
                trace_cursor: num_field("trace_cursor")?,
                config_hash: num_field("config_hash")?,
                payload_checksum: num_field("payload_checksum")?,
                format_version: u32::try_from(num_field("format_version")?)
                    .map_err(|_| ManifestError::Parse("format_version overflows u32".into()))?,
            });
        }
        Ok(Self { entries })
    }

    /// Reads `checkpoints.json` from a checkpoint directory. A missing
    /// file is an empty manifest (the directory is merely not populated
    /// yet); a present-but-malformed file is an error.
    ///
    /// # Errors
    ///
    /// I/O errors other than `NotFound` (naming the path), plus
    /// [`ManifestError`] wrapped as `InvalidData`.
    pub fn load(dir: &Path) -> std::io::Result<Self> {
        let path = dir.join(MANIFEST_FILE);
        let mut bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Self::default()),
            Err(e) => {
                return Err(std::io::Error::new(
                    e.kind(),
                    format!("reading {}: {e}", path.display()),
                ))
            }
        };
        crate::faults::on_read(&path, &mut bytes)?;
        let text = String::from_utf8(bytes).map_err(|_| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "{}: {}",
                    path.display(),
                    ManifestError::Parse("not UTF-8".into())
                ),
            )
        })?;
        Self::from_json(&text).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("{}: {e}", path.display()),
            )
        })
    }

    /// Writes `checkpoints.json` into a checkpoint directory (creating the
    /// directory if needed), crash-safely (see [`crate::atomic_write`]).
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn store(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        crate::atomic_write(&dir.join(MANIFEST_FILE), self.to_json().as_bytes())
    }
}

pub use json::parse as parse_json;
pub use json::Value as JsonValue;

/// A minimal JSON reader for this workspace's artefact schemas: objects,
/// arrays, strings (the escapes the in-repo writers emit: `\"`, `\\`,
/// `\n`, `\r`, `\t`, `\uXXXX`), numbers, and the literals
/// `true`/`false`/`null`. Not a general-purpose parser — just enough to
/// read back what the hand-rolled writers emit.
mod json {
    /// A parsed JSON value (manifest subset).
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// An object, as insertion-ordered key/value pairs.
        Object(Vec<(String, Value)>),
        /// An array.
        Array(Vec<Value>),
        /// A string.
        String(String),
        /// An unsigned integer (the only number shape the manifest emits).
        Number(u64),
        /// A float (tolerated on read so future fields don't break old
        /// parsers).
        Float(f64),
        /// `true`/`false`.
        Bool(bool),
        /// `null`.
        Null,
    }

    impl Value {
        /// The object's fields, if this is an object.
        pub fn as_object(&self) -> Option<ObjectView<'_>> {
            match self {
                Value::Object(fields) => Some(ObjectView(fields)),
                _ => None,
            }
        }

        /// The elements, if this is an array.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(v) => Some(v),
                _ => None,
            }
        }

        /// The string contents, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::String(s) => Some(s),
                _ => None,
            }
        }

        /// The integer value, if this is an unsigned integer.
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Number(n) => Some(*n),
                _ => None,
            }
        }

        /// The numeric value as a float (integers widen losslessly for
        /// the magnitudes this workspace's artefacts record).
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Number(n) => Some(*n as f64),
                Value::Float(f) => Some(*f),
                _ => None,
            }
        }
    }

    /// Key-lookup view over an object's fields.
    pub struct ObjectView<'a>(&'a [(String, Value)]);

    impl<'a> ObjectView<'a> {
        /// First value under `key`, if present.
        pub fn get(&self, key: &str) -> Option<&'a Value> {
            self.0.iter().find(|(k, _)| k == key).map(|(_, v)| v)
        }
    }

    /// Parses one JSON document.
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
        skip_ws(b, pos);
        if *pos < b.len() && b[*pos] == ch {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", ch as char, *pos))
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => parse_object(b, pos),
            Some(b'[') => parse_array(b, pos),
            Some(b'"') => Ok(Value::String(parse_string(b, pos)?)),
            Some(b't') => parse_literal(b, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_literal(b, pos, "false", Value::Bool(false)),
            Some(b'n') => parse_literal(b, pos, "null", Value::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
            _ => Err(format!("unexpected content at byte {}", *pos)),
        }
    }

    fn parse_literal(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", *pos))
        }
    }

    fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'{')?;
        let mut fields = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            skip_ws(b, pos);
            let key = parse_string(b, pos)?;
            expect(b, pos, b':')?;
            let value = parse_value(b, pos)?;
            fields.push((key, value));
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
            }
        }
    }

    fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(parse_value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
            }
        }
    }

    fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected string at byte {}", *pos));
        }
        *pos += 1;
        let mut out = String::new();
        while let Some(&c) = b.get(*pos) {
            match c {
                b'"' => {
                    *pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    let esc = b
                        .get(*pos + 1)
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            // \uXXXX (the BMP escapes this workspace's
                            // writers emit for control characters).
                            let hex = b
                                .get(*pos + 2..*pos + 6)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "non-ASCII \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|e| format!("bad \\u escape {hex:?}: {e}"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid \\u code point {code:#x}"))?,
                            );
                            *pos += 4;
                        }
                        other => return Err(format!("unsupported escape \\{}", *other as char)),
                    }
                    *pos += 2;
                }
                _ => {
                    out.push(c as char);
                    *pos += 1;
                }
            }
        }
        Err("unterminated string".into())
    }

    fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        if b.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        while *pos < b.len()
            && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            *pos += 1;
        }
        let text = std::str::from_utf8(&b[start..*pos]).expect("ascii digits");
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Value::Number(n));
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(bench: &str, kind: &str, target: u64) -> ManifestEntry {
        ManifestEntry {
            key: CheckpointKey {
                benchmark: bench.into(),
                scheme: "vp-wb-nrr32".into(),
                physical_regs: 64,
                seed: 42,
                miss_penalty: 50,
                warmup: 2_000,
                kind: kind.into(),
                target,
            },
            file: format!("{bench}_vp-wb-nrr32_{kind}_{target}.vprsnap"),
            committed: target + 3,
            cycle: 12_345,
            trace_cursor: target + 40,
            config_hash: 0xdead_beef_cafe_f00d,
            payload_checksum: 0x0123_4567_89ab_cdef,
            format_version: FORMAT_VERSION,
        }
    }

    #[test]
    fn manifest_round_trips_through_json() {
        let mut m = Manifest::default();
        m.upsert(entry("swim", "warm", 2_000));
        m.upsert(entry("swim", "interval", 2_625));
        m.upsert(entry("go", "warm", 2_000));
        let back = Manifest::from_json(&m.to_json()).unwrap();
        assert_eq!(back, m);
        assert!(back.find(&entry("swim", "interval", 2_625).key).is_some());
        assert!(back.find(&entry("swim", "interval", 9_999).key).is_none());
    }

    #[test]
    fn upsert_replaces_by_key() {
        let mut m = Manifest::default();
        m.upsert(entry("swim", "warm", 2_000));
        let mut replacement = entry("swim", "warm", 2_000);
        replacement.payload_checksum = 7;
        m.upsert(replacement.clone());
        assert_eq!(m.entries.len(), 1);
        assert_eq!(m.entries[0], replacement);
    }

    #[test]
    fn validation_rejects_stale_entries() {
        let e = entry("swim", "warm", 2_000);
        assert_eq!(
            Manifest::validate(&e, e.config_hash, e.payload_checksum),
            Ok(())
        );
        assert!(matches!(
            Manifest::validate(&e, e.config_hash ^ 1, e.payload_checksum),
            Err(ManifestError::StaleConfig { .. })
        ));
        assert!(matches!(
            Manifest::validate(&e, e.config_hash, e.payload_checksum ^ 1),
            Err(ManifestError::ChecksumMismatch { .. })
        ));
        let mut old = e.clone();
        old.format_version = FORMAT_VERSION + 1;
        assert!(matches!(
            Manifest::validate(&old, e.config_hash, e.payload_checksum),
            Err(ManifestError::StaleFormat { .. })
        ));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(Manifest::from_json("").is_err());
        assert!(Manifest::from_json("{}").is_err());
        assert!(
            Manifest::from_json("{\"schema\": \"something-else/v9\", \"checkpoints\": []}")
                .is_err()
        );
        assert!(Manifest::from_json(
            "{\"schema\": \"vpr-snap-checkpoints/v1\", \"checkpoints\": [{\"benchmark\": 3}]}"
        )
        .is_err());
        let empty =
            Manifest::from_json("{\"schema\": \"vpr-snap-checkpoints/v1\", \"checkpoints\": []}")
                .unwrap();
        assert!(empty.entries.is_empty());
    }

    #[test]
    fn load_of_missing_manifest_is_empty() {
        let dir = std::env::temp_dir().join("vpr-snap-manifest-test-absent");
        let _ = std::fs::remove_dir_all(&dir);
        assert!(Manifest::load(&dir).unwrap().entries.is_empty());
    }

    #[test]
    fn store_then_load_round_trips() {
        let dir = std::env::temp_dir().join("vpr-snap-manifest-test-roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        let mut m = Manifest::default();
        m.upsert(entry("compress", "warm", 2_000));
        m.store(&dir).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap(), m);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
