//! # vpr-snap — checkpoint/restore substrate
//!
//! The simulator's snapshot subsystem: a tiny, dependency-free binary
//! serialisation layer (the build environment has no serde) plus the
//! versioned [`Snapshot`] envelope every checkpoint travels in.
//!
//! Every state-holding crate of the workspace implements [`Snap`] for its
//! types; `vpr_core::Processor::snapshot` walks the whole machine —
//! pipeline, reorder buffer, instruction queue, functional units, all four
//! renaming schemes, cache/MSHRs/LSQ/store buffer, branch state, trace
//! generator position and statistics — into one payload, and
//! `Processor::restore` rebuilds a processor that continues **bit-identically**
//! to the uninterrupted run (pinned by `crates/bench/tests/snapshot_roundtrip.rs`).
//!
//! ## Snapshot format
//!
//! A snapshot is a flat little-endian byte stream:
//!
//! ```text
//! [ 8-byte magic "VPRSNAP\0" ][ u32 format version ][ u64 FNV-1a checksum of payload ]
//! [ u64 payload length ][ payload bytes ... ]
//! ```
//!
//! The payload itself is an unframed concatenation of fields in a fixed
//! order — the encoder writes no field names or tags, so the format is
//! compact but **not** self-describing. Sequences are length-prefixed
//! (`u64` count); `Option` is a one-byte presence flag; enums are a
//! one-byte discriminant followed by their fields.
//!
//! ## Versioning rules
//!
//! * [`FORMAT_VERSION`] names the payload layout. **Any** change to what a
//!   `Snap` impl writes — a new field, a reordering, a widened integer —
//!   must bump it; there is no skipping or defaulting of unknown fields.
//! * Readers reject snapshots whose version differs from their own
//!   ([`SnapError::Version`]): cross-version restore is intentionally
//!   unsupported. Snapshots are experiment artefacts (a sampling run, a
//!   checkpointed sweep, a `.vprsnap` checkpoint directory), not an
//!   archival format — regenerating them is always possible and cheap
//!   relative to maintaining decoders for old layouts.
//! * The checksum guards against truncation/corruption in transit
//!   ([`SnapError::Checksum`]); decoding a corrupt payload that passes the
//!   checksum is treated as a logic error and panics.
//!
//! ## `.vprsnap` files and the checkpoint manifest
//!
//! A snapshot written to disk keeps the same envelope byte-for-byte; by
//! convention such files carry the `.vprsnap` extension and live in a
//! *checkpoint directory* next to a `checkpoints.json` manifest
//! ([`manifest::Manifest`]) recording, per artefact, the experiment key it
//! belongs to, the configuration hash it was taken under, the trace cursor
//! it stands at, and the envelope's payload checksum — so stale artefacts
//! are rejected at load rather than silently reused. The full format is
//! documented in `docs/snapshot-format.md`.
//!
//! ## Traits
//!
//! * [`Snap`] — fixed-layout save/load for a state type.
//! * [`Resumable`] — implemented by trace generators: saves the workload
//!   *position* (RNG state, loop cursors) so a checkpoint captures where
//!   the instruction stream stands, and restores it into a freshly built
//!   generator of the same program.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod faults;
pub mod manifest;

use std::collections::VecDeque;
use std::fmt;
use std::io;
use std::path::Path;

/// Magic bytes leading every serialised snapshot.
pub const MAGIC: [u8; 8] = *b"VPRSNAP\0";

/// Payload-layout version. Bump on **any** change to any `Snap` impl's
/// field set or ordering (see the module docs' versioning rules).
pub const FORMAT_VERSION: u32 = 1;

/// Why a snapshot could not be opened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The byte stream does not start with [`MAGIC`].
    Magic,
    /// The snapshot was written by a different [`FORMAT_VERSION`].
    Version {
        /// Version found in the envelope.
        found: u32,
        /// Version this reader supports.
        supported: u32,
    },
    /// The envelope is shorter than its header claims.
    Truncated,
    /// The payload checksum does not match.
    Checksum,
    /// The restore target does not match the snapshot (e.g. a renamer tag
    /// disagreeing with the serialised configuration).
    Mismatch(String),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Magic => write!(f, "not a vpr snapshot (bad magic)"),
            SnapError::Version { found, supported } => write!(
                f,
                "snapshot format v{found} is not readable by this build (supports v{supported})"
            ),
            SnapError::Truncated => write!(f, "snapshot truncated"),
            SnapError::Checksum => write!(f, "snapshot payload checksum mismatch"),
            SnapError::Mismatch(what) => write!(f, "snapshot does not fit restore target: {what}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// FNV-1a over `bytes` — the envelope's corruption guard, public so the
/// checkpoint manifest can record (and later re-derive) configuration
/// hashes and payload checksums without a second hash implementation.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    h
}

// ----------------------------------------------------------------------
// Crash-safe file writes
// ----------------------------------------------------------------------

/// Replaces `path` with `bytes` crash-safely: write a `.tmp` sibling,
/// fsync it, then atomically rename it over the destination. A crash (or
/// an injected [`faults::FaultKind::PartialRename`]) at any point leaves
/// either the complete old file or the complete new file at `path` —
/// never a torn mixture. Every artefact writer in the workspace
/// (`Snapshot::write_to`, the checkpoint manifest) routes through here.
///
/// The rename-based protocol is atomic on POSIX filesystems when the temp
/// file lives in the same directory as the destination, which is why the
/// temp name is `<name>.tmp` next to `path` rather than in a shared
/// scratch directory.
///
/// # Errors
///
/// Propagates the underlying I/O error; the temp file is cleaned up on
/// failure where possible (a leftover `<name>.tmp` after a real crash is
/// harmless and is swept by `checkpoint repair`).
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    use std::io::Write as _;

    let mut bytes = bytes.to_vec();
    let disposition = faults::on_write(path, &mut bytes)?;

    let file_name = path.file_name().ok_or_else(|| {
        io::Error::other(format!("cannot write to {}: no file name", path.display()))
    })?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);

    let write_tmp = (|| -> io::Result<()> {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        // Data must be durable before the rename publishes it, otherwise a
        // crash can expose a renamed-but-empty file.
        f.sync_all()
    })();
    if let Err(e) = write_tmp {
        let _ = std::fs::remove_file(&tmp);
        return Err(io::Error::new(
            e.kind(),
            format!("writing {}: {e}", tmp.display()),
        ));
    }

    if disposition == faults::WriteDisposition::CrashBeforeRename {
        // Simulated crash between fsync and rename: the temp file stays
        // behind, the destination is untouched.
        return Err(io::Error::other(format!(
            "injected crash before rename of {}",
            path.display()
        )));
    }

    std::fs::rename(&tmp, path).map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        io::Error::new(e.kind(), format!("renaming over {}: {e}", path.display()))
    })?;

    // Make the rename itself durable. Failure here is not fatal to
    // correctness (the file content is already consistent), so ignore
    // platforms/filesystems where directories cannot be fsynced.
    if let Some(parent) = path.parent() {
        if let Ok(dir) = std::fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

// ----------------------------------------------------------------------
// Encoder / Decoder
// ----------------------------------------------------------------------

/// Appends fixed-layout little-endian fields to a byte buffer.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    #[inline]
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u16`, little-endian.
    #[inline]
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u32`, little-endian.
    #[inline]
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    #[inline]
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64` (platform-independent layout).
    #[inline]
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Writes a `bool` as one byte.
    #[inline]
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Writes an `f64` as its IEEE-754 bits.
    #[inline]
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

/// Reads fields written by [`Encoder`], in the same order.
///
/// Decoding methods panic on truncation: the [`Snapshot`] envelope has
/// already validated length and checksum, so running out of bytes mid-field
/// means the writer and reader disagree on layout — a bug, not an input
/// error.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Starts decoding at the front of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    #[inline]
    fn take(&mut self, n: usize) -> &'a [u8] {
        assert!(
            self.pos + n <= self.buf.len(),
            "snapshot payload exhausted: layout mismatch between writer and reader"
        );
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        s
    }

    /// Reads one byte.
    #[inline]
    pub fn take_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    /// Reads a little-endian `u16`.
    #[inline]
    pub fn take_u16(&mut self) -> u16 {
        u16::from_le_bytes(self.take(2).try_into().expect("2 bytes"))
    }

    /// Reads a little-endian `u32`.
    #[inline]
    pub fn take_u32(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().expect("4 bytes"))
    }

    /// Reads a little-endian `u64`.
    #[inline]
    pub fn take_u64(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().expect("8 bytes"))
    }

    /// Reads a `usize` written by [`Encoder::put_usize`].
    #[inline]
    pub fn take_usize(&mut self) -> usize {
        let v = self.take_u64();
        usize::try_from(v).expect("snapshot usize overflows this platform")
    }

    /// Reads a `bool`.
    #[inline]
    pub fn take_bool(&mut self) -> bool {
        match self.take_u8() {
            0 => false,
            1 => true,
            other => panic!("snapshot bool field holds {other}: layout mismatch"),
        }
    }

    /// Reads an `f64` from its IEEE-754 bits.
    #[inline]
    pub fn take_f64(&mut self) -> f64 {
        f64::from_bits(self.take_u64())
    }
}

// ----------------------------------------------------------------------
// Snap trait + blanket container impls
// ----------------------------------------------------------------------

/// Fixed-layout binary serialisation of one state type.
///
/// Implementations must write and read the **same fields in the same
/// order**; any change to that layout bumps [`FORMAT_VERSION`].
pub trait Snap: Sized {
    /// Appends this value's fields to `enc`.
    fn save(&self, enc: &mut Encoder);
    /// Reads a value previously written by [`Snap::save`].
    fn load(dec: &mut Decoder<'_>) -> Self;
}

macro_rules! snap_prim {
    ($($t:ty => $put:ident / $take:ident),* $(,)?) => {$(
        impl Snap for $t {
            #[inline]
            fn save(&self, enc: &mut Encoder) {
                enc.$put(*self);
            }
            #[inline]
            fn load(dec: &mut Decoder<'_>) -> Self {
                dec.$take()
            }
        }
    )*};
}

snap_prim!(
    u8 => put_u8 / take_u8,
    u16 => put_u16 / take_u16,
    u32 => put_u32 / take_u32,
    u64 => put_u64 / take_u64,
    usize => put_usize / take_usize,
    bool => put_bool / take_bool,
    f64 => put_f64 / take_f64,
);

impl<T: Snap> Snap for Option<T> {
    fn save(&self, enc: &mut Encoder) {
        match self {
            None => enc.put_u8(0),
            Some(v) => {
                enc.put_u8(1);
                v.save(enc);
            }
        }
    }

    fn load(dec: &mut Decoder<'_>) -> Self {
        match dec.take_u8() {
            0 => None,
            1 => Some(T::load(dec)),
            other => panic!("snapshot Option flag holds {other}: layout mismatch"),
        }
    }
}

impl<T: Snap> Snap for Vec<T> {
    fn save(&self, enc: &mut Encoder) {
        enc.put_usize(self.len());
        for v in self {
            v.save(enc);
        }
    }

    fn load(dec: &mut Decoder<'_>) -> Self {
        let n = dec.take_usize();
        (0..n).map(|_| T::load(dec)).collect()
    }
}

impl<T: Snap> Snap for VecDeque<T> {
    fn save(&self, enc: &mut Encoder) {
        enc.put_usize(self.len());
        for v in self {
            v.save(enc);
        }
    }

    fn load(dec: &mut Decoder<'_>) -> Self {
        let n = dec.take_usize();
        (0..n).map(|_| T::load(dec)).collect()
    }
}

impl<T: Snap, const N: usize> Snap for [T; N] {
    fn save(&self, enc: &mut Encoder) {
        for v in self {
            v.save(enc);
        }
    }

    fn load(dec: &mut Decoder<'_>) -> Self {
        std::array::from_fn(|_| T::load(dec))
    }
}

impl<A: Snap, B: Snap> Snap for (A, B) {
    fn save(&self, enc: &mut Encoder) {
        self.0.save(enc);
        self.1.save(enc);
    }

    fn load(dec: &mut Decoder<'_>) -> Self {
        (A::load(dec), B::load(dec))
    }
}

impl<A: Snap, B: Snap, C: Snap> Snap for (A, B, C) {
    fn save(&self, enc: &mut Encoder) {
        self.0.save(enc);
        self.1.save(enc);
        self.2.save(enc);
    }

    fn load(dec: &mut Decoder<'_>) -> Self {
        (A::load(dec), B::load(dec), C::load(dec))
    }
}

// ----------------------------------------------------------------------
// Resumable streams
// ----------------------------------------------------------------------

/// A workload source whose *position* can be checkpointed.
///
/// Static structure (the program, the seed schedule) is **not** saved:
/// restore happens into a freshly built generator of the same program, and
/// only the dynamic cursor state (RNG, loop position, emitted count) moves
/// across. Implementations should assert shape compatibility where cheap.
pub trait Resumable {
    /// Saves the stream position.
    fn save_state(&self, enc: &mut Encoder);
    /// Restores a position previously saved from an identically-built
    /// stream.
    fn restore_state(&mut self, dec: &mut Decoder<'_>);
}

// ----------------------------------------------------------------------
// Snapshot envelope
// ----------------------------------------------------------------------

/// A versioned, checksummed snapshot payload.
///
/// ```
/// use vpr_snap::{Encoder, Snapshot};
/// let mut enc = Encoder::new();
/// enc.put_u64(42);
/// let snap = Snapshot::new(enc.into_bytes());
/// let bytes = snap.to_bytes();
/// let back = Snapshot::from_bytes(&bytes).unwrap();
/// assert_eq!(back.payload(), snap.payload());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    payload: Vec<u8>,
}

impl Snapshot {
    /// Wraps an encoded payload.
    pub fn new(payload: Vec<u8>) -> Self {
        Self { payload }
    }

    /// The raw payload (hand to a [`Decoder`]).
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// FNV-1a checksum of the payload — the same value the serialised
    /// envelope carries, exposed so checkpoint manifests can pin the exact
    /// artefact they were written against.
    pub fn checksum(&self) -> u64 {
        fnv1a(&self.payload)
    }

    /// Serialises the envelope: magic, version, checksum, length, payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(MAGIC.len() + 4 + 8 + 8 + self.payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&fnv1a(&self.payload).to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Opens a serialised envelope, validating magic, version, length and
    /// checksum.
    ///
    /// # Errors
    ///
    /// See [`SnapError`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapError> {
        let header = MAGIC.len() + 4 + 8 + 8;
        if bytes.len() < header {
            return Err(if bytes.starts_with(&MAGIC) {
                SnapError::Truncated
            } else {
                SnapError::Magic
            });
        }
        if bytes[..MAGIC.len()] != MAGIC {
            return Err(SnapError::Magic);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != FORMAT_VERSION {
            return Err(SnapError::Version {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let checksum = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
        let len = u64::from_le_bytes(bytes[20..28].try_into().expect("8 bytes")) as usize;
        let payload = bytes
            .get(header..header + len)
            .ok_or(SnapError::Truncated)?;
        if fnv1a(payload) != checksum {
            return Err(SnapError::Checksum);
        }
        Ok(Self {
            payload: payload.to_vec(),
        })
    }

    /// Writes the envelope to a file, crash-safely (see [`atomic_write`]).
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        atomic_write(path, &self.to_bytes())
    }

    /// Reads an envelope from a file.
    ///
    /// # Errors
    ///
    /// I/O errors are wrapped in [`std::io::Error`] and name the path;
    /// format errors (torn, truncated, or corrupt envelopes) come back as
    /// [`std::io::ErrorKind::InvalidData`].
    pub fn read_from(path: &std::path::Path) -> std::io::Result<Self> {
        let mut bytes = std::fs::read(path)
            .map_err(|e| io::Error::new(e.kind(), format!("reading {}: {e}", path.display())))?;
        faults::on_read(path, &mut bytes)?;
        Self::from_bytes(&bytes).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: {e}", path.display()),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut enc = Encoder::new();
        7u8.save(&mut enc);
        1234u16.save(&mut enc);
        0xdead_beefu32.save(&mut enc);
        u64::MAX.save(&mut enc);
        42usize.save(&mut enc);
        true.save(&mut enc);
        false.save(&mut enc);
        (-1.5f64).save(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(u8::load(&mut dec), 7);
        assert_eq!(u16::load(&mut dec), 1234);
        assert_eq!(u32::load(&mut dec), 0xdead_beef);
        assert_eq!(u64::load(&mut dec), u64::MAX);
        assert_eq!(usize::load(&mut dec), 42);
        assert!(bool::load(&mut dec));
        assert!(!bool::load(&mut dec));
        assert_eq!(f64::load(&mut dec), -1.5);
        assert_eq!(dec.remaining(), 0);
    }

    #[test]
    fn containers_round_trip() {
        let mut enc = Encoder::new();
        let v: Vec<u64> = vec![1, 2, 3];
        let d: VecDeque<u16> = VecDeque::from([9, 8]);
        let o: Option<u32> = Some(5);
        let n: Option<u32> = None;
        let a: [bool; 3] = [true, false, true];
        let t = (1u8, 2u64, 3u16);
        v.save(&mut enc);
        d.save(&mut enc);
        o.save(&mut enc);
        n.save(&mut enc);
        a.save(&mut enc);
        t.save(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(Vec::<u64>::load(&mut dec), v);
        assert_eq!(VecDeque::<u16>::load(&mut dec), d);
        assert_eq!(Option::<u32>::load(&mut dec), o);
        assert_eq!(Option::<u32>::load(&mut dec), n);
        assert_eq!(<[bool; 3]>::load(&mut dec), a);
        assert_eq!(<(u8, u64, u16)>::load(&mut dec), t);
        assert_eq!(dec.remaining(), 0);
    }

    #[test]
    fn envelope_round_trips_and_validates() {
        let snap = Snapshot::new(vec![1, 2, 3, 4, 5]);
        let bytes = snap.to_bytes();
        assert_eq!(Snapshot::from_bytes(&bytes).unwrap(), snap);

        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert_eq!(Snapshot::from_bytes(&bad), Err(SnapError::Magic));

        // Wrong version.
        let mut bad = bytes.clone();
        bad[8] ^= 0xff;
        assert!(matches!(
            Snapshot::from_bytes(&bad),
            Err(SnapError::Version { .. })
        ));

        // Flipped payload bit.
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert_eq!(Snapshot::from_bytes(&bad), Err(SnapError::Checksum));

        // Truncated payload.
        let short = &bytes[..bytes.len() - 2];
        assert_eq!(Snapshot::from_bytes(short), Err(SnapError::Truncated));

        // Not a snapshot at all.
        assert_eq!(Snapshot::from_bytes(b"hello"), Err(SnapError::Magic));
    }

    #[test]
    fn empty_payload_is_fine() {
        let snap = Snapshot::new(Vec::new());
        let bytes = snap.to_bytes();
        assert_eq!(
            Snapshot::from_bytes(&bytes).unwrap().payload(),
            &[] as &[u8]
        );
    }
}
