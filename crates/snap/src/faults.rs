//! Deterministic fault injection for the artefact and sweep layers.
//!
//! Robustness claims are only as good as the faults they were tested
//! against, so this module gives the workspace a **seeded, dependency-free
//! fault plan** that the storage layer ([`crate::atomic_write`],
//! [`crate::Snapshot::read_from`]) and the sweep engine
//! (`vpr_bench::sweep`) consult at well-defined hook points. A test arms
//! exactly one [`FaultPlan`]; the next matching operation suffers the
//! planned fault (an injected I/O error, a truncated or bit-flipped byte
//! stream, a rename that "crashes" half-way, or a job panic), every later
//! operation proceeds untouched, and [`disarm`] reports what fired.
//!
//! The design constraints, in order:
//!
//! 1. **Deterministic.** A plan is a pure function of its fields (and its
//!    `seed` for the corruption position), and it fires on the `nth`
//!    operation whose path/label contains `target` — never on wall-clock
//!    time or randomness at fire time. Armed plans fire **at most once**.
//! 2. **Inert when disarmed.** The hooks are a single relaxed atomic load
//!    on the fast path; production binaries never arm a plan.
//! 3. **Scoped.** Matching is by substring, so a test arms a plan whose
//!    `target` names its own temp directory (or job label) and cannot
//!    perturb unrelated I/O in the same process.
//!
//! Arming is process-global (worker threads must observe it), so tests
//! that arm plans serialise themselves on the mutex returned by
//! [`exclusive`].

use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// What the injected fault does at its hook point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The file operation fails with an injected [`io::Error`].
    IoError,
    /// The byte stream loses its tail (the kept length is derived from the
    /// plan's seed, so it is deterministic but arbitrary).
    Truncate,
    /// One bit of the byte stream flips (position derived from the seed).
    BitFlip,
    /// A write completes its temp file but "crashes" before the atomic
    /// rename: the destination keeps its old content (or stays absent) and
    /// the caller sees an error — the torn-write shape
    /// [`crate::atomic_write`] exists to protect against.
    PartialRename,
    /// The job with a matching label panics at its start
    /// ([`maybe_panic_job`]).
    JobPanic,
    /// A worker lease is treated as expired the next time the service's
    /// lease scanner inspects it ([`lease_expires_early`]), forcing a
    /// reclaim-and-retry even though the worker is still healthy.
    LeaseExpire,
    /// The service drops a client connection mid-exchange
    /// ([`client_disconnects`]); the client must reconnect and re-poll.
    ClientDisconnect,
    /// A service worker dies (panics) at the start of a leased job
    /// ([`maybe_kill_worker`]); the lease machinery must reclaim and
    /// retry the job.
    WorkerKill,
}

impl FaultKind {
    /// Stable label used in reports and JSON.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::IoError => "io-error",
            FaultKind::Truncate => "truncate",
            FaultKind::BitFlip => "bit-flip",
            FaultKind::PartialRename => "partial-rename",
            FaultKind::JobPanic => "job-panic",
            FaultKind::LeaseExpire => "lease-expire",
            FaultKind::ClientDisconnect => "client-disconnect",
            FaultKind::WorkerKill => "worker-kill",
        }
    }
}

/// Which hook a fault arms against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// File reads ([`crate::Snapshot::read_from`], manifest loads).
    Read,
    /// File writes ([`crate::atomic_write`]).
    Write,
    /// Sweep jobs ([`maybe_panic_job`]).
    Job,
    /// Service journal appends ([`on_journal_append`]).
    JournalAppend,
    /// Service lease-scanner inspections ([`lease_expires_early`]).
    Lease,
    /// Service client-connection exchanges ([`client_disconnects`]).
    Client,
    /// Service worker job starts ([`maybe_kill_worker`]).
    Worker,
}

impl FaultOp {
    /// Stable label used in reports and JSON.
    pub fn label(self) -> &'static str {
        match self {
            FaultOp::Read => "read",
            FaultOp::Write => "write",
            FaultOp::Job => "job",
            FaultOp::JournalAppend => "journal-append",
            FaultOp::Lease => "lease",
            FaultOp::Client => "client",
            FaultOp::Worker => "worker",
        }
    }
}

/// One planned fault: fire `kind` on the `nth` `op` whose path or job
/// label contains `target`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// The effect.
    pub kind: FaultKind,
    /// The hook it arms against.
    pub op: FaultOp,
    /// Substring the operation's path (or job label) must contain.
    pub target: String,
    /// Zero-based index among matching operations: `0` fires on the first
    /// match, `1` on the second, …
    pub nth: u32,
    /// Drives the corruption position for [`FaultKind::Truncate`] and
    /// [`FaultKind::BitFlip`]; ignored by the other kinds.
    pub seed: u64,
}

impl FaultPlan {
    /// A single-fault plan with `nth = 0` and `seed = 0`.
    pub fn new(kind: FaultKind, op: FaultOp, target: impl Into<String>) -> Self {
        Self {
            kind,
            op,
            target: target.into(),
            nth: 0,
            seed: 0,
        }
    }

    /// Derives one fault of the full matrix from a seed: kind, hook, and
    /// position are all functions of `seed`, so a property test sweeping
    /// seeds sweeps the matrix. `target` scopes the plan as usual.
    pub fn from_seed(seed: u64, target: impl Into<String>) -> Self {
        // Splitmix-style scramble so neighbouring seeds pick unrelated
        // faults.
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let (kind, op) = match z % 8 {
            0 => (FaultKind::IoError, FaultOp::Read),
            1 => (FaultKind::IoError, FaultOp::Write),
            2 => (FaultKind::Truncate, FaultOp::Read),
            3 => (FaultKind::Truncate, FaultOp::Write),
            4 => (FaultKind::BitFlip, FaultOp::Read),
            5 => (FaultKind::BitFlip, FaultOp::Write),
            6 => (FaultKind::PartialRename, FaultOp::Write),
            _ => (FaultKind::JobPanic, FaultOp::Job),
        };
        Self {
            kind,
            op,
            target: target.into(),
            nth: ((z >> 8) % 3) as u32,
            seed: z,
        }
    }

    /// Derives one fault of the **service** matrix from a seed — the four
    /// daemon hook points ([`on_journal_append`], [`lease_expires_early`],
    /// [`client_disconnects`], [`maybe_kill_worker`]) with every effect
    /// each supports. Kept separate from [`FaultPlan::from_seed`] so the
    /// storage-layer matrix (and the tests pinning it) stay unchanged.
    pub fn from_seed_service(seed: u64, target: impl Into<String>) -> Self {
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let (kind, op) = match z % 6 {
            0 => (FaultKind::IoError, FaultOp::JournalAppend),
            1 => (FaultKind::Truncate, FaultOp::JournalAppend),
            2 => (FaultKind::BitFlip, FaultOp::JournalAppend),
            3 => (FaultKind::LeaseExpire, FaultOp::Lease),
            4 => (FaultKind::ClientDisconnect, FaultOp::Client),
            _ => (FaultKind::WorkerKill, FaultOp::Worker),
        };
        Self {
            kind,
            op,
            target: target.into(),
            nth: ((z >> 8) % 2) as u32,
            seed: z,
        }
    }
}

/// What an armed plan did, reported by [`disarm`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRecord {
    /// The effect that fired.
    pub kind: FaultKind,
    /// The hook it fired at.
    pub op: FaultOp,
    /// The path or job label it fired on.
    pub site: String,
}

struct Armed {
    plan: FaultPlan,
    matched: u32,
    fired: Option<FaultRecord>,
}

// The fast-path gate: hooks only take the mutex when a plan is armed.
static ANY_ARMED: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<Option<Armed>> = Mutex::new(None);
static EXCLUSIVE: Mutex<()> = Mutex::new(());

fn state() -> MutexGuard<'static, Option<Armed>> {
    // A panic while holding the state lock (JobPanic fires outside it, but
    // be safe) must not cascade into every later hook.
    STATE.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Serialises tests that arm fault plans: hold the guard for the whole
/// armed section. (Arming is process-global; two concurrently armed plans
/// would race for the same hooks.)
pub fn exclusive() -> MutexGuard<'static, ()> {
    EXCLUSIVE.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Arms `plan`. Exactly one plan can be armed at a time.
///
/// # Panics
///
/// Panics if a plan is already armed (tests must [`disarm`] — and hold
/// [`exclusive`] — around every armed section).
pub fn arm(plan: FaultPlan) {
    let mut s = state();
    assert!(s.is_none(), "a fault plan is already armed");
    *s = Some(Armed {
        plan,
        matched: 0,
        fired: None,
    });
    ANY_ARMED.store(true, Ordering::SeqCst);
}

/// Disarms the current plan and reports what fired, if anything.
pub fn disarm() -> Option<FaultRecord> {
    let mut s = state();
    ANY_ARMED.store(false, Ordering::SeqCst);
    s.take().and_then(|a| a.fired)
}

/// True when a plan is armed and has not fired yet.
pub fn armed_pending() -> bool {
    if !ANY_ARMED.load(Ordering::Relaxed) {
        return false;
    }
    state().as_ref().is_some_and(|a| a.fired.is_none())
}

/// Checks whether the armed plan fires on this `(op, site)` operation;
/// consumes the plan's single shot when it does.
fn fire(op: FaultOp, site: &str) -> Option<FaultPlan> {
    if !ANY_ARMED.load(Ordering::Relaxed) {
        return None;
    }
    let mut s = state();
    let armed = s.as_mut()?;
    if armed.fired.is_some() || armed.plan.op != op || !site.contains(&armed.plan.target) {
        return None;
    }
    let index = armed.matched;
    armed.matched += 1;
    if index != armed.plan.nth {
        return None;
    }
    armed.fired = Some(FaultRecord {
        kind: armed.plan.kind,
        op,
        site: site.to_string(),
    });
    Some(armed.plan.clone())
}

/// Applies a byte-stream corruption deterministically derived from the
/// plan seed. Truncation keeps a seed-chosen prefix (possibly empty); a
/// bit flip inverts one seed-chosen bit.
fn corrupt(kind: FaultKind, seed: u64, bytes: &mut Vec<u8>) {
    match kind {
        FaultKind::Truncate => {
            let keep = if bytes.is_empty() {
                0
            } else {
                (seed % bytes.len() as u64) as usize
            };
            bytes.truncate(keep);
        }
        FaultKind::BitFlip if !bytes.is_empty() => {
            let bit = (seed % (bytes.len() as u64 * 8)) as usize;
            bytes[bit / 8] ^= 1 << (bit % 8);
        }
        _ => {}
    }
}

/// What [`on_write`] tells [`crate::atomic_write`] to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteDisposition {
    /// Write (possibly corrupted) bytes and rename as usual.
    Proceed,
    /// Complete the temp file, then simulate a crash before the rename:
    /// leave the temp file behind and return an error.
    CrashBeforeRename,
}

/// Write-side hook: may corrupt `bytes` in place, demand a simulated
/// pre-rename crash, or fail outright.
///
/// # Errors
///
/// The injected [`FaultKind::IoError`].
pub fn on_write(path: &Path, bytes: &mut Vec<u8>) -> io::Result<WriteDisposition> {
    let Some(plan) = fire(FaultOp::Write, &path.display().to_string()) else {
        return Ok(WriteDisposition::Proceed);
    };
    match plan.kind {
        FaultKind::IoError => Err(io::Error::other(format!(
            "injected write fault at {}",
            path.display()
        ))),
        FaultKind::PartialRename => Ok(WriteDisposition::CrashBeforeRename),
        kind => {
            corrupt(kind, plan.seed, bytes);
            Ok(WriteDisposition::Proceed)
        }
    }
}

/// Read-side hook: may corrupt the just-read `bytes` in place (the parser
/// then sees a torn artefact) or fail outright.
///
/// # Errors
///
/// The injected [`FaultKind::IoError`].
pub fn on_read(path: &Path, bytes: &mut Vec<u8>) -> io::Result<()> {
    let Some(plan) = fire(FaultOp::Read, &path.display().to_string()) else {
        return Ok(());
    };
    match plan.kind {
        FaultKind::IoError => Err(io::Error::other(format!(
            "injected read fault at {}",
            path.display()
        ))),
        kind => {
            corrupt(kind, plan.seed, bytes);
            Ok(())
        }
    }
}

/// Job hook: panics when the armed plan is a [`FaultKind::JobPanic`]
/// matching `label`. Callers place this at the start of each isolated
/// job; the panic-isolated pool contains and retries it.
pub fn maybe_panic_job(label: &str) {
    if let Some(plan) = fire(FaultOp::Job, label) {
        if plan.kind == FaultKind::JobPanic {
            panic!("injected fault: job panic ({label})");
        }
    }
}

/// Journal-append hook: may corrupt the record bytes about to be written
/// (the appender's read-back verification then sees a torn record) or
/// fail the append outright. The service's journal must either durably
/// store the exact bytes or report failure — never acknowledge a lie.
///
/// # Errors
///
/// The injected [`FaultKind::IoError`].
pub fn on_journal_append(path: &Path, bytes: &mut Vec<u8>) -> io::Result<()> {
    let Some(plan) = fire(FaultOp::JournalAppend, &path.display().to_string()) else {
        return Ok(());
    };
    match plan.kind {
        FaultKind::IoError => Err(io::Error::other(format!(
            "injected journal-append fault at {}",
            path.display()
        ))),
        kind => {
            corrupt(kind, plan.seed, bytes);
            Ok(())
        }
    }
}

/// Lease hook: returns `true` when the armed plan demands that the lease
/// with a matching label be treated as already expired — the service must
/// reclaim and retry the job as if the real deadline had passed.
pub fn lease_expires_early(label: &str) -> bool {
    matches!(
        fire(FaultOp::Lease, label),
        Some(FaultPlan {
            kind: FaultKind::LeaseExpire,
            ..
        })
    )
}

/// Client-connection hook: returns `true` when the service should drop
/// the connection with a matching label before responding — the client
/// must survive by reconnecting and re-polling (results are keyed by job
/// id, so nothing is lost).
pub fn client_disconnects(label: &str) -> bool {
    matches!(
        fire(FaultOp::Client, label),
        Some(FaultPlan {
            kind: FaultKind::ClientDisconnect,
            ..
        })
    )
}

/// Worker hook: panics when the armed plan kills the worker starting the
/// job with a matching label. The service catches the unwind, treats the
/// worker as dead, and lets the lease machinery retry the job.
pub fn maybe_kill_worker(label: &str) {
    if let Some(plan) = fire(FaultOp::Worker, label) {
        if plan.kind == FaultKind::WorkerKill {
            panic!("injected fault: worker kill ({label})");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn disarmed_hooks_are_inert() {
        let _x = exclusive();
        let mut bytes = vec![1, 2, 3];
        assert_eq!(
            on_write(&PathBuf::from("/tmp/x"), &mut bytes).unwrap(),
            WriteDisposition::Proceed
        );
        on_read(&PathBuf::from("/tmp/x"), &mut bytes).unwrap();
        maybe_panic_job("anything");
        assert_eq!(bytes, vec![1, 2, 3]);
        assert!(!armed_pending());
    }

    #[test]
    fn fires_once_on_the_nth_match_only() {
        let _x = exclusive();
        arm(FaultPlan {
            kind: FaultKind::IoError,
            op: FaultOp::Read,
            target: "match-me".into(),
            nth: 1,
            seed: 0,
        });
        let mut bytes = Vec::new();
        // Non-matching path: untouched, does not advance the count.
        on_read(&PathBuf::from("/tmp/other"), &mut bytes).unwrap();
        // First match: counted, not fired (nth = 1).
        on_read(&PathBuf::from("/tmp/match-me/a"), &mut bytes).unwrap();
        assert!(armed_pending());
        // Second match: fires.
        let err = on_read(&PathBuf::from("/tmp/match-me/b"), &mut bytes).unwrap_err();
        assert!(err.to_string().contains("injected read fault"));
        // Third match: single-shot, inert again.
        on_read(&PathBuf::from("/tmp/match-me/c"), &mut bytes).unwrap();
        let fired = disarm().expect("fired");
        assert_eq!(fired.kind, FaultKind::IoError);
        assert!(fired.site.contains("match-me/b"));
    }

    #[test]
    fn corruptions_are_deterministic() {
        let _x = exclusive();
        for kind in [FaultKind::Truncate, FaultKind::BitFlip] {
            let run = |seed| {
                arm(FaultPlan {
                    kind,
                    op: FaultOp::Write,
                    target: "det".into(),
                    nth: 0,
                    seed,
                });
                let mut bytes: Vec<u8> = (0..64).collect();
                on_write(&PathBuf::from("/tmp/det"), &mut bytes).unwrap();
                disarm().expect("fired");
                bytes
            };
            assert_eq!(run(7), run(7), "{kind:?} must be seed-deterministic");
            assert_ne!(run(7), (0..64).collect::<Vec<u8>>());
        }
    }

    #[test]
    fn job_panic_fires_and_is_recorded() {
        let _x = exclusive();
        arm(FaultPlan::new(FaultKind::JobPanic, FaultOp::Job, "swim"));
        let caught = std::panic::catch_unwind(|| maybe_panic_job("swim/conventional"));
        assert!(caught.is_err());
        let fired = disarm().expect("fired");
        assert_eq!(fired.kind, FaultKind::JobPanic);
        assert_eq!(fired.site, "swim/conventional");
    }

    #[test]
    fn seeded_plans_cover_the_matrix() {
        let mut kinds = std::collections::BTreeSet::new();
        for seed in 0..64 {
            kinds.insert(FaultPlan::from_seed(seed, "t").kind.label());
        }
        assert_eq!(kinds.len(), 5, "all five fault kinds reachable: {kinds:?}");
    }

    #[test]
    fn service_seeded_plans_cover_the_service_matrix() {
        let mut combos = std::collections::BTreeSet::new();
        for seed in 0..64 {
            let p = FaultPlan::from_seed_service(seed, "t");
            combos.insert((p.kind.label(), p.op.label()));
            assert!(p.nth < 2, "service plans keep nth small");
        }
        let expected: std::collections::BTreeSet<_> = [
            ("io-error", "journal-append"),
            ("truncate", "journal-append"),
            ("bit-flip", "journal-append"),
            ("lease-expire", "lease"),
            ("client-disconnect", "client"),
            ("worker-kill", "worker"),
        ]
        .into_iter()
        .collect();
        assert_eq!(combos, expected, "all six service combos reachable");
    }

    #[test]
    fn journal_append_hook_corrupts_or_fails_once() {
        let _x = exclusive();
        // IoError: append must fail, bytes untouched.
        arm(FaultPlan::new(
            FaultKind::IoError,
            FaultOp::JournalAppend,
            "jobs.wal",
        ));
        let mut bytes = vec![1u8, 2, 3, 4];
        let err = on_journal_append(&PathBuf::from("/tmp/d/jobs.wal"), &mut bytes).unwrap_err();
        assert!(err.to_string().contains("injected journal-append fault"));
        assert_eq!(bytes, vec![1, 2, 3, 4]);
        // Single-shot: the next append is clean.
        on_journal_append(&PathBuf::from("/tmp/d/jobs.wal"), &mut bytes).unwrap();
        assert_eq!(disarm().expect("fired").op, FaultOp::JournalAppend);

        // BitFlip: bytes corrupted deterministically, append "succeeds".
        arm(FaultPlan {
            kind: FaultKind::BitFlip,
            op: FaultOp::JournalAppend,
            target: "jobs.wal".into(),
            nth: 0,
            seed: 11,
        });
        let mut corrupted = vec![0u8; 16];
        on_journal_append(&PathBuf::from("/tmp/d/jobs.wal"), &mut corrupted).unwrap();
        assert_ne!(corrupted, vec![0u8; 16]);
        disarm().expect("fired");
    }

    #[test]
    fn lease_client_and_worker_hooks_fire_once() {
        let _x = exclusive();
        arm(FaultPlan::new(
            FaultKind::LeaseExpire,
            FaultOp::Lease,
            "job-3",
        ));
        assert!(!lease_expires_early("job-1"));
        assert!(lease_expires_early("job-3"));
        assert!(!lease_expires_early("job-3"), "single-shot");
        assert_eq!(disarm().expect("fired").kind, FaultKind::LeaseExpire);

        arm(FaultPlan::new(
            FaultKind::ClientDisconnect,
            FaultOp::Client,
            "conn",
        ));
        assert!(client_disconnects("conn-7"));
        assert!(!client_disconnects("conn-7"));
        assert_eq!(disarm().expect("fired").kind, FaultKind::ClientDisconnect);

        arm(FaultPlan::new(
            FaultKind::WorkerKill,
            FaultOp::Worker,
            "swim",
        ));
        maybe_kill_worker("hydro2d/conventional@64r");
        let caught = std::panic::catch_unwind(|| maybe_kill_worker("swim/conventional@64r"));
        assert!(caught.is_err());
        maybe_kill_worker("swim/conventional@64r"); // single-shot: inert now
        assert_eq!(disarm().expect("fired").kind, FaultKind::WorkerKill);
    }
}
