//! Single-fault byte-identity at the **service** layer: any one injected
//! fault at the daemon's four hook points — a journal append that errors,
//! tears, or bit-flips; a lease that expires early; a client connection
//! dropped before the response; a worker killed the moment it picks a job
//! up — may cost a retry or a reconnect, but every client's results must
//! stay byte-identical to a fault-free serial run.
//!
//! Seeds sweep [`FaultPlan::from_seed_service`], which covers the whole
//! service matrix (kind × hook × position). Each seed runs an in-process
//! daemon (the fault registry is process-global) with two concurrent
//! tenants submitting overlapping grids, so the dedup/single-flight path
//! is exercised under fault too.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::time::Duration;

use vpr_bench::jobs::{execute_job, JobOutput, JobSpec};
use vpr_bench::ExperimentConfig;
use vpr_core::par::RetryPolicy;
use vpr_core::RenameScheme;
use vpr_serve::{Client, ServeConfig, Server};
use vpr_snap::faults::{self, FaultPlan};
use vpr_trace::Benchmark;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vpr-serve-faults-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn grid() -> Vec<JobSpec> {
    let exp = ExperimentConfig {
        warmup: 256,
        measure: 2_048,
        ..ExperimentConfig::quick()
    };
    let mut specs = Vec::new();
    for workload in [Benchmark::Swim, Benchmark::Go] {
        for scheme in [
            RenameScheme::Conventional,
            RenameScheme::VirtualPhysicalWriteback { nrr: 8 },
        ] {
            specs.push(JobSpec {
                workload: workload.into(),
                scheme,
                physical_regs: 64,
                exp,
            });
        }
    }
    specs
}

fn assert_bits(got: &JobOutput, want: &JobOutput, ctx: &str) {
    assert_eq!(
        got.metrics.ipc.to_bits(),
        want.metrics.ipc.to_bits(),
        "{ctx}: ipc"
    );
    assert_eq!(
        got.metrics.miss_ratio.to_bits(),
        want.metrics.miss_ratio.to_bits(),
        "{ctx}: miss ratio"
    );
    assert_eq!(
        got.metrics.executions_per_commit.to_bits(),
        want.metrics.executions_per_commit.to_bits(),
        "{ctx}: executions per commit"
    );
}

#[test]
fn any_single_service_fault_leaves_every_client_byte_identical() {
    // Arming is process-global: serialise against every other fault test.
    let _x = faults::exclusive();

    let specs = grid();
    let reference: Vec<JobOutput> = specs.iter().map(|s| execute_job(s, None)).collect();

    // Pick the smallest seed set that covers the full service matrix:
    // 6 (kind, hook) combos × 2 positions.
    let mut seeds = Vec::new();
    let mut distinct = BTreeSet::new();
    for seed in 0..256u64 {
        let plan = FaultPlan::from_seed_service(seed, "");
        if distinct.insert((plan.kind.label(), plan.nth)) {
            seeds.push(seed);
        }
        if distinct.len() == 12 {
            break;
        }
    }

    let mut covered: BTreeSet<&'static str> = BTreeSet::new();
    for seed in seeds {
        let plan = FaultPlan::from_seed_service(seed, "");
        covered.insert(plan.kind.label());
        let ctx = format!(
            "seed {seed}: {}/{} nth={}",
            plan.kind.label(),
            plan.op.label(),
            plan.nth
        );

        let root = tmp(&format!("seed-{seed}"));
        let socket = root.join("serve.sock");
        let mut cfg = ServeConfig::new(&socket, root.join("state"));
        cfg.workers = 2;
        cfg.lease_ms = 30_000;
        cfg.retry = RetryPolicy::immediate(3);
        let server = Server::start(cfg).expect("daemon starts");
        faults::arm(plan);

        // Two tenants, overlapping grids, concurrently.
        let handles: Vec<_> = (0..2)
            .map(|tenant| {
                let specs = specs.clone();
                let socket = socket.clone();
                std::thread::spawn(move || {
                    let client = Client::new(socket);
                    let ids = client
                        .submit(&specs)
                        .unwrap_or_else(|e| panic!("tenant {tenant} submit: {e}"));
                    client
                        .wait(&ids, Duration::from_secs(180))
                        .unwrap_or_else(|e| panic!("tenant {tenant} wait: {e}"))
                })
            })
            .collect();
        let tenants: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

        let fired = faults::disarm();
        server.stop();

        for (tenant, results) in tenants.iter().enumerate() {
            assert_eq!(results.len(), specs.len(), "{ctx}");
            for ((spec, r), want) in specs.iter().zip(results).zip(&reference) {
                let ctx = format!("{ctx} (fired: {fired:?}) tenant {tenant}: {}", spec.label());
                assert_eq!(r.state, "done", "{ctx}: {:?}", r.error);
                assert_bits(r.output.as_ref().expect("done carries output"), want, &ctx);
            }
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    // The seed sweep must have touched every service fault kind.
    let expected: BTreeSet<&'static str> = [
        "io-error",
        "truncate",
        "bit-flip",
        "lease-expire",
        "client-disconnect",
        "worker-kill",
    ]
    .into_iter()
    .collect();
    assert_eq!(covered, expected, "seed sweep missed part of the matrix");
}

#[test]
fn exhausted_retry_budget_degrades_into_a_structured_failure() {
    let _x = faults::exclusive();

    // A plan that kills the worker every time it picks this job up would
    // need a multi-shot registry; instead, exhaust the budget with a
    // zero-retry policy and a single worker-kill — one attempt, one
    // injected death, budget gone.
    let spec = grid().remove(0);
    let root = tmp("degrade");
    let socket = root.join("serve.sock");
    let mut cfg = ServeConfig::new(&socket, root.join("state"));
    cfg.workers = 1;
    cfg.retry = RetryPolicy::none();
    let server = Server::start(cfg).expect("daemon starts");
    faults::arm(FaultPlan::new(
        vpr_snap::faults::FaultKind::WorkerKill,
        vpr_snap::faults::FaultOp::Worker,
        "",
    ));

    let client = Client::new(&socket);
    let ids = client.submit(std::slice::from_ref(&spec)).unwrap();
    let results = client.wait(&ids, Duration::from_secs(60)).unwrap();

    let fired = faults::disarm();
    server.stop();

    assert!(fired.is_some(), "the worker-kill fault must have fired");
    let r = &results[0];
    assert_eq!(
        r.state, "failed",
        "budget 0 means the first death is terminal"
    );
    assert!(
        r.error.as_deref().unwrap_or("").contains("worker kill"),
        "{:?}",
        r.error
    );
    // The degradation is structured: NaN metrics, not a wedged queue.
    assert!(r
        .output
        .as_ref()
        .expect("failed carries the NaN placeholder")
        .metrics
        .is_failed());

    let _ = std::fs::remove_dir_all(&root);
}
