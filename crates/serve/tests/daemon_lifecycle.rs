//! Daemon lifecycle drills, driving the real `vpr-serve` binary as a
//! child process:
//!
//! 1. start → submit a grid → SIGTERM mid-sweep → restart → the journal
//!    replay completes every accepted job **byte-identically** to a
//!    fault-free serial run;
//! 2. the same restart serves already-finished jobs from the journal
//!    (replay hits) instead of recomputing them;
//! 3. the `--abort-after-appends` drill: a daemon that dies mid-submit
//!    never acknowledged the batch, and the journalled prefix plus a
//!    clean resubmission converge on the same bits.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use vpr_bench::jobs::{execute_job, JobOutput, JobSpec};
use vpr_bench::ExperimentConfig;
use vpr_core::RenameScheme;
use vpr_serve::client::Client;
use vpr_serve::protocol::PollResult;
use vpr_trace::Benchmark;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vpr-serve-lifecycle-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The drill grid: two workloads × (conventional, virtual-physical).
fn grid() -> Vec<JobSpec> {
    let exp = ExperimentConfig {
        warmup: 256,
        measure: 1_024,
        ..ExperimentConfig::quick()
    };
    let mut specs = Vec::new();
    for workload in [Benchmark::Swim, Benchmark::Go] {
        for scheme in [
            RenameScheme::Conventional,
            RenameScheme::VirtualPhysicalWriteback { nrr: 8 },
        ] {
            specs.push(JobSpec {
                workload: workload.into(),
                scheme,
                physical_regs: 64,
                exp,
            });
        }
    }
    specs
}

/// A child daemon, killed on drop so a failing assert can't leak it.
struct Daemon(Child);

impl Daemon {
    fn spawn(socket: &Path, dir: &Path, extra: &[&str]) -> Daemon {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_vpr-serve"));
        cmd.arg("serve")
            .arg("--socket")
            .arg(socket)
            .arg("--dir")
            .arg(dir)
            .arg("--workers")
            .arg("2")
            .args(extra)
            .stdout(Stdio::null())
            .stderr(Stdio::null());
        Daemon(cmd.spawn().expect("spawn vpr-serve"))
    }

    /// The production kill path: plain SIGTERM, no graceful handler —
    /// the journal is what makes this safe.
    fn sigterm(&mut self) {
        let _ = Command::new("kill").arg(self.0.id().to_string()).status();
        let _ = self.0.wait();
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn assert_bits(r: &PollResult, want: &JobOutput, ctx: &str) {
    assert_eq!(r.state, "done", "{ctx}: {:?}", r.error);
    let got = r.output.as_ref().expect("done result carries output");
    assert_eq!(
        got.metrics.ipc.to_bits(),
        want.metrics.ipc.to_bits(),
        "{ctx}: ipc"
    );
    assert_eq!(
        got.metrics.miss_ratio.to_bits(),
        want.metrics.miss_ratio.to_bits(),
        "{ctx}: miss ratio"
    );
    assert_eq!(
        got.metrics.executions_per_commit.to_bits(),
        want.metrics.executions_per_commit.to_bits(),
        "{ctx}: executions per commit"
    );
}

#[test]
fn sigterm_mid_sweep_then_restart_completes_byte_identically() {
    let specs = grid();
    let reference: Vec<JobOutput> = specs.iter().map(|s| execute_job(s, None)).collect();

    let root = tmp("sigterm");
    let socket = root.join("serve.sock");
    let dir = root.join("state");

    let mut daemon = Daemon::spawn(&socket, &dir, &[]);
    let mut client = Client::new(&socket);
    client.timeout = Duration::from_secs(60);
    let ids = client.submit(&specs).expect("submit against fresh daemon");

    // Kill mid-sweep. The ack above covers journalled jobs only;
    // whatever was running dies with the process.
    daemon.sigterm();

    // Restart on the same state dir: replay re-queues unfinished work.
    let _daemon2 = Daemon::spawn(&socket, &dir, &[]);
    let results = client
        .wait(&ids, Duration::from_secs(180))
        .expect("grid completes after restart");
    for ((spec, r), want) in specs.iter().zip(&results).zip(&reference) {
        assert_bits(r, want, &format!("after restart: {}", spec.label()));
    }

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn restart_serves_finished_jobs_from_the_journal() {
    let specs = grid();
    let reference: Vec<JobOutput> = specs.iter().map(|s| execute_job(s, None)).collect();

    let root = tmp("replay");
    let socket = root.join("serve.sock");
    let dir = root.join("state");

    let mut daemon = Daemon::spawn(&socket, &dir, &[]);
    let client = Client::new(&socket);
    let ids = client.submit(&specs).unwrap();
    client
        .wait(&ids, Duration::from_secs(180))
        .expect("grid completes");

    // Kill the daemon with everything finished, restart, and ask again:
    // every result must come back from the journal, bit-for-bit, with
    // the replay visible in the metrics surface.
    daemon.sigterm();
    let _daemon2 = Daemon::spawn(&socket, &dir, &[]);
    let results = client
        .wait(&ids, Duration::from_secs(60))
        .expect("replayed results are immediately terminal");
    for ((spec, r), want) in specs.iter().zip(&results).zip(&reference) {
        assert_bits(r, want, &format!("replayed: {}", spec.label()));
    }
    let (_, prometheus) = client.metrics().expect("metrics after replay");
    assert!(
        prometheus.contains(&format!("vpr_serve_replay_hits_total {}", specs.len())),
        "all {} finished jobs should replay from the journal:\n{prometheus}",
        specs.len()
    );

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn aborted_submit_never_acknowledges_unjournalled_work() {
    let specs = grid();
    let reference: Vec<JobOutput> = specs.iter().map(|s| execute_job(s, None)).collect();

    let root = tmp("abort");
    let socket = root.join("serve.sock");
    let dir = root.join("state");

    // The drill's simulated SIGKILL: abort after two journalled job
    // records, i.e. mid-way through accepting the 4-job batch.
    let _daemon = Daemon::spawn(&socket, &dir, &["--abort-after-appends", "2"]);
    let mut client = Client::new(&socket);
    client.timeout = Duration::from_secs(3);
    let err = client
        .submit(&specs)
        .expect_err("the daemon died before acknowledging");
    assert!(err.contains("timed out"), "{err}");

    // Restart without the abort hook. The journalled prefix replays and
    // runs; the client, which never got an ack, resubmits the whole
    // grid under fresh ids. Both paths produce the same bits.
    let _daemon2 = Daemon::spawn(&socket, &dir, &[]);
    let mut client = Client::new(&socket);
    client.timeout = Duration::from_secs(60);
    let ids = client.submit(&specs).expect("resubmit after restart");
    let results = client
        .wait(&ids, Duration::from_secs(180))
        .expect("resubmitted grid completes");
    for ((spec, r), want) in specs.iter().zip(&results).zip(&reference) {
        assert_bits(r, want, &format!("after abort drill: {}", spec.label()));
    }

    let _ = std::fs::remove_dir_all(&root);
}
