//! The `vpr-serve` binary: daemon, client, and drill tooling in one.
//!
//! ```text
//! vpr-serve serve    --socket S --dir D [--workers N] [--lease-ms M]
//!                    [--retries N] [--backoff-base-ms B] [--backoff-cap-ms C]
//!                    [--shard] [--abort-after-appends N]
//!                    [--arm-service-fault SEED[:TARGET]]
//! vpr-serve submit   --socket S [--json OUT] [--workloads a,b] [--schemes x,y]
//!                    [--regs N] [--warmup N] [--measure N] [--seed N]
//!                    [--miss-penalty N] [--timeout-s T]
//! vpr-serve metrics  --socket S
//! vpr-serve check    --results R.json --golden table2.json
//! vpr-serve exec-job --spec JSON --dir STORE_DIR
//! ```
//!
//! `--abort-after-appends` and `--arm-service-fault` are drill hooks: the
//! first aborts the process (SIGKILL-equivalent) after N journalled job
//! records, the second arms one seeded service fault
//! ([`vpr_snap::faults::FaultPlan::from_seed_service`]) at startup. CI
//! uses them to rehearse the kill-and-restart contract.

use std::path::PathBuf;
use std::time::Duration;

use vpr_bench::jobs::{execute_job, JobSpec};
use vpr_bench::sweep::{json_escape, json_num};
use vpr_bench::workloads::{parse_scheme, Workload};
use vpr_bench::{take_flag, take_flag_value, write_json_artifact, ExperimentConfig};
use vpr_core::par::RetryPolicy;
use vpr_serve::{Client, ServeConfig, Server};
use vpr_snap::manifest::{parse_json, JsonValue};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let command = args.remove(0);
    match command.as_str() {
        "serve" => cmd_serve(args),
        "submit" => cmd_submit(args),
        "metrics" => cmd_metrics(args),
        "check" => cmd_check(args),
        "exec-job" => cmd_exec_job(args),
        other => {
            eprintln!("unknown command: {other}");
            usage();
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: vpr-serve <serve|submit|metrics|check|exec-job> [flags]\n\
         see docs/service.md for the full protocol and operator playbook"
    );
    std::process::exit(2);
}

fn required(args: &mut Vec<String>, flag: &str) -> String {
    take_flag_value(args, flag).unwrap_or_else(|| {
        eprintln!("missing required flag {flag}");
        std::process::exit(2);
    })
}

fn numeric<T: std::str::FromStr>(value: String, flag: &str) -> T {
    value.parse().unwrap_or_else(|_| {
        eprintln!("{flag} needs a numeric value, got {value:?}");
        std::process::exit(2);
    })
}

fn reject_leftovers(args: &[String]) {
    if let Some(extra) = args.first() {
        eprintln!("unrecognised argument: {extra}");
        std::process::exit(2);
    }
}

fn cmd_serve(mut args: Vec<String>) {
    let socket = PathBuf::from(required(&mut args, "--socket"));
    let dir = PathBuf::from(required(&mut args, "--dir"));
    let mut cfg = ServeConfig::new(socket, dir);
    if let Some(v) = take_flag_value(&mut args, "--workers") {
        cfg.workers = numeric(v, "--workers");
    }
    if let Some(v) = take_flag_value(&mut args, "--lease-ms") {
        cfg.lease_ms = numeric(v, "--lease-ms");
    }
    let budget = take_flag_value(&mut args, "--retries")
        .map(|v| numeric(v, "--retries"))
        .unwrap_or(cfg.retry.budget);
    let base = take_flag_value(&mut args, "--backoff-base-ms")
        .map(|v| numeric(v, "--backoff-base-ms"))
        .unwrap_or(cfg.retry.base_ms);
    let cap = take_flag_value(&mut args, "--backoff-cap-ms")
        .map(|v| numeric(v, "--backoff-cap-ms"))
        .unwrap_or(cfg.retry.cap_ms);
    cfg.retry = RetryPolicy::backoff(budget, base, cap);
    cfg.shard = take_flag(&mut args, "--shard");
    if let Some(v) = take_flag_value(&mut args, "--abort-after-appends") {
        cfg.abort_after_appends = Some(numeric(v, "--abort-after-appends"));
    }
    let fault = take_flag_value(&mut args, "--arm-service-fault");
    reject_leftovers(&args);

    if let Some(spec) = fault {
        let (seed, target) = match spec.split_once(':') {
            Some((s, t)) => (s.to_string(), t.to_string()),
            None => (spec, String::new()),
        };
        let seed: u64 = numeric(seed, "--arm-service-fault");
        let plan = vpr_snap::faults::FaultPlan::from_seed_service(seed, target);
        eprintln!(
            "vpr-serve: arming service fault {}/{} nth={} (seed {seed})",
            plan.kind.label(),
            plan.op.label(),
            plan.nth
        );
        vpr_snap::faults::arm(plan);
    }

    let server = Server::start(cfg).unwrap_or_else(|e| {
        eprintln!("vpr-serve: start failed: {e}");
        std::process::exit(1);
    });
    eprintln!("vpr-serve: listening");
    while !server.shutdown_requested() {
        std::thread::sleep(Duration::from_millis(100));
    }
    server.stop();
}

fn experiment_from(args: &mut Vec<String>) -> ExperimentConfig {
    let mut exp = ExperimentConfig::quick();
    if let Some(v) = take_flag_value(args, "--warmup") {
        exp.warmup = numeric(v, "--warmup");
    }
    if let Some(v) = take_flag_value(args, "--measure") {
        exp.measure = numeric(v, "--measure");
    }
    if let Some(v) = take_flag_value(args, "--seed") {
        exp.seed = numeric(v, "--seed");
    }
    if let Some(v) = take_flag_value(args, "--miss-penalty") {
        exp.miss_penalty = numeric(v, "--miss-penalty");
    }
    exp
}

fn cmd_submit(mut args: Vec<String>) {
    let socket = required(&mut args, "--socket");
    let out = take_flag_value(&mut args, "--json");
    let workloads: Vec<Workload> = match take_flag_value(&mut args, "--workloads") {
        Some(csv) => csv
            .split(',')
            .map(|w| {
                Workload::parse(w.trim()).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                })
            })
            .collect(),
        None => Workload::synthetic(),
    };
    let schemes: Vec<_> = take_flag_value(&mut args, "--schemes")
        .unwrap_or_else(|| "conventional,vp-wb-nrr32".into())
        .split(',')
        .map(|s| {
            parse_scheme(s.trim()).unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(2);
            })
        })
        .collect();
    let regs: usize = take_flag_value(&mut args, "--regs")
        .map(|v| numeric(v, "--regs"))
        .unwrap_or(64);
    let exp = experiment_from(&mut args);
    let timeout_s: u64 = take_flag_value(&mut args, "--timeout-s")
        .map(|v| numeric(v, "--timeout-s"))
        .unwrap_or(600);
    reject_leftovers(&args);

    let specs: Vec<JobSpec> = workloads
        .iter()
        .flat_map(|&workload| {
            schemes.iter().map(move |&scheme| JobSpec {
                workload,
                scheme,
                physical_regs: regs,
                exp,
            })
        })
        .collect();

    let client = Client::new(&socket);
    let ids = client.submit(&specs).unwrap_or_else(|e| {
        eprintln!("vpr-serve submit: {e}");
        std::process::exit(1);
    });
    eprintln!("vpr-serve submit: {} jobs accepted", ids.len());
    let results = client
        .wait(&ids, Duration::from_secs(timeout_s))
        .unwrap_or_else(|e| {
            eprintln!("vpr-serve submit: {e}");
            std::process::exit(1);
        });

    let mut rows = Vec::with_capacity(results.len());
    let mut failed = 0usize;
    for (spec, r) in specs.iter().zip(&results) {
        if r.state == "failed" {
            failed += 1;
        }
        let mut row = format!(
            "    {{\"id\": {}, \"workload\": \"{}\", \"scheme\": \"{}\", \"regs\": {}, \
             \"state\": \"{}\", \"attempts\": {}",
            r.id,
            json_escape(&spec.workload.name()),
            json_escape(&vpr_bench::workloads::scheme_label(spec.scheme)),
            spec.physical_regs,
            r.state,
            r.attempts
        );
        if let Some(output) = &r.output {
            row.push_str(&format!(", \"output\": {}", output.to_json()));
        }
        if let Some(error) = &r.error {
            row.push_str(&format!(", \"error\": \"{}\"", json_escape(error)));
        }
        row.push('}');
        rows.push(row);
    }
    let doc = format!(
        "{{\n  \"schema\": \"vpr-serve-results/v1\",\n  \"regs\": {regs},\n  \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    match out {
        Some(path) => write_json_artifact(std::path::Path::new(&path), &doc),
        None => print!("{doc}"),
    }
    if failed > 0 {
        eprintln!("vpr-serve submit: {failed} job(s) degraded to structured failures");
        std::process::exit(3);
    }
}

fn cmd_metrics(mut args: Vec<String>) {
    let socket = required(&mut args, "--socket");
    reject_leftovers(&args);
    let client = Client::new(&socket);
    match client.metrics() {
        Ok((_, prometheus)) => print!("{prometheus}"),
        Err(e) => {
            eprintln!("vpr-serve metrics: {e}");
            std::process::exit(1);
        }
    }
}

/// Compares a `submit --json` results file against the batch
/// `table2.json` golden: per workload, the conventional IPC, the VP-WB
/// IPC, and the VP executions-per-commit must agree at the golden's own
/// 4-decimal rendering. Byte-identical f64s always pass; anything that
/// diverges enough to move the printed table fails loudly.
fn cmd_check(mut args: Vec<String>) {
    let results_path = required(&mut args, "--results");
    let golden_path = required(&mut args, "--golden");
    reject_leftovers(&args);

    let read = |p: &str| -> JsonValue {
        let text = std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("vpr-serve check: {p}: {e}");
            std::process::exit(1);
        });
        parse_json(&text).unwrap_or_else(|e| {
            eprintln!("vpr-serve check: {p}: {e}");
            std::process::exit(1);
        })
    };
    let results = read(&results_path);
    let golden = read(&golden_path);

    // Index the service results: (workload, scheme) -> (ipc, epc).
    let mut measured: Vec<(String, String, f64, f64)> = Vec::new();
    for r in results
        .as_object()
        .and_then(|o| o.get("results"))
        .and_then(JsonValue::as_array)
        .unwrap_or_else(|| {
            eprintln!("vpr-serve check: results file has no `results` array");
            std::process::exit(1);
        })
    {
        let Some(obj) = r.as_object() else { continue };
        let workload = obj
            .get("workload")
            .and_then(JsonValue::as_str)
            .unwrap_or("");
        let scheme = obj.get("scheme").and_then(JsonValue::as_str).unwrap_or("");
        let output = obj.get("output").and_then(JsonValue::as_object);
        let num = |k: &str| -> f64 {
            output
                .as_ref()
                .and_then(|o| o.get(k))
                .and_then(JsonValue::as_f64)
                .unwrap_or(f64::NAN)
        };
        measured.push((
            workload.to_string(),
            scheme.to_string(),
            num("ipc"),
            num("executions_per_commit"),
        ));
    }
    let find = |workload: &str, scheme: &str| -> Option<(f64, f64)> {
        measured
            .iter()
            .find(|(w, s, ..)| w == workload && s == scheme)
            .map(|&(_, _, ipc, epc)| (ipc, epc))
    };

    let rows = golden
        .as_object()
        .and_then(|o| o.get("rows"))
        .and_then(JsonValue::as_array)
        .unwrap_or_else(|| {
            eprintln!("vpr-serve check: golden file has no `rows` array");
            std::process::exit(1);
        });
    let mut mismatches = 0usize;
    let mut compared = 0usize;
    for row in rows {
        let Some(obj) = row.as_object() else { continue };
        let bench = obj
            .get("benchmark")
            .and_then(JsonValue::as_str)
            .unwrap_or("");
        let golden_num = |k: &str| obj.get(k).and_then(JsonValue::as_f64).unwrap_or(f64::NAN);
        let mut check = |what: &str, got: Option<f64>, want: f64| {
            compared += 1;
            let got_s = got
                .map(|v| json_num(v, 4))
                .unwrap_or_else(|| "absent".into());
            let want_s = json_num(want, 4);
            if got_s != want_s {
                eprintln!("MISMATCH {bench} {what}: service {got_s} vs golden {want_s}");
                mismatches += 1;
            }
        };
        let conv = find(bench, "conventional");
        let vp = find(bench, "vp-wb-nrr32");
        check("conv_ipc", conv.map(|(ipc, _)| ipc), golden_num("conv_ipc"));
        check("vp_ipc", vp.map(|(ipc, _)| ipc), golden_num("vp_ipc"));
        check(
            "vp_executions_per_commit",
            vp.map(|(_, epc)| epc),
            golden_num("vp_executions_per_commit"),
        );
    }
    if mismatches > 0 {
        eprintln!("vpr-serve check: {mismatches}/{compared} cells mismatched");
        std::process::exit(1);
    }
    println!("vpr-serve check: {compared} cells match the golden");
}

fn cmd_exec_job(mut args: Vec<String>) {
    let spec_json = required(&mut args, "--spec");
    let dir = take_flag_value(&mut args, "--dir");
    reject_leftovers(&args);
    let spec = parse_json(&spec_json)
        .map_err(|e| e.to_string())
        .and_then(|v| JobSpec::from_json(&v))
        .unwrap_or_else(|e| {
            eprintln!("vpr-serve exec-job: bad --spec: {e}");
            std::process::exit(2);
        });
    let output = match dir {
        Some(dir) => {
            let store =
                vpr_bench::checkpoints::CheckpointStore::open_resilient(std::path::Path::new(&dir))
                    .0;
            let store = std::sync::Mutex::new(store);
            execute_job(&spec, Some(&store))
        }
        None => execute_job(&spec, None),
    };
    println!("{}", output.to_json());
}
