//! The line-delimited JSON wire protocol.
//!
//! One request per line, one response per line, over a Unix-domain
//! socket. Both sides reuse the workspace's in-crate JSON machinery
//! ([`vpr_snap::manifest::parse_json`] to read, hand-rolled writers to
//! render), so the daemon stays dependency-free.
//!
//! Requests:
//!
//! ```text
//! {"op": "submit", "jobs": [<job-spec>, ...]}
//! {"op": "poll", "ids": [1, 2, ...]}
//! {"op": "status"}
//! {"op": "metrics"}
//! {"op": "shutdown"}
//! ```
//!
//! Every response is an object with an `"ok"` field; `"ok": false`
//! carries an `"error"` string. Job results travel as
//! [`vpr_bench::jobs::JobOutput`] objects at full round-trip precision —
//! a poll result is bit-identical to what the executing worker computed.

use vpr_bench::jobs::{JobOutput, JobSpec};
use vpr_bench::sweep::json_escape;
use vpr_snap::manifest::{parse_json, JsonValue};

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a batch of jobs; acknowledged only after every job record
    /// is durably journalled.
    Submit(Vec<JobSpec>),
    /// Fetch the state (and results, when terminal) of the given ids.
    Poll(Vec<u64>),
    /// Queue/lease/terminal counts.
    Status,
    /// Service metrics (JSON + Prometheus text).
    Metrics,
    /// Graceful shutdown (used by tests; production restarts just kill
    /// the process — the journal makes that safe).
    Shutdown,
}

/// Parses one request line.
///
/// # Errors
///
/// Describes the malformed field; the server answers with an
/// `"ok": false` response and keeps the connection.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = parse_json(line).map_err(|e| e.to_string())?;
    let obj = v.as_object().ok_or("request must be a JSON object")?;
    match obj.get("op").and_then(JsonValue::as_str) {
        Some("submit") => {
            let jobs = obj
                .get("jobs")
                .and_then(JsonValue::as_array)
                .ok_or("submit needs a `jobs` array")?;
            if jobs.is_empty() {
                return Err("submit needs at least one job".into());
            }
            jobs.iter()
                .map(JobSpec::from_json)
                .collect::<Result<Vec<_>, _>>()
                .map(Request::Submit)
        }
        Some("poll") => {
            let ids = obj
                .get("ids")
                .and_then(JsonValue::as_array)
                .ok_or("poll needs an `ids` array")?;
            ids.iter()
                .map(|v| v.as_u64().ok_or_else(|| "ids must be integers".to_string()))
                .collect::<Result<Vec<_>, _>>()
                .map(Request::Poll)
        }
        Some("status") => Ok(Request::Status),
        Some("metrics") => Ok(Request::Metrics),
        Some("shutdown") => Ok(Request::Shutdown),
        other => Err(format!("unknown op {other:?}")),
    }
}

/// Renders a submit request line.
pub fn submit_line(jobs: &[JobSpec]) -> String {
    let specs: Vec<String> = jobs.iter().map(JobSpec::to_json).collect();
    format!("{{\"op\": \"submit\", \"jobs\": [{}]}}", specs.join(", "))
}

/// Renders a poll request line.
pub fn poll_line(ids: &[u64]) -> String {
    let ids: Vec<String> = ids.iter().map(u64::to_string).collect();
    format!("{{\"op\": \"poll\", \"ids\": [{}]}}", ids.join(", "))
}

/// Renders an error response line.
pub fn error_line(message: &str) -> String {
    format!("{{\"ok\": false, \"error\": \"{}\"}}", json_escape(message))
}

/// One job's state in a poll response.
#[derive(Debug, Clone, PartialEq)]
pub struct PollResult {
    /// The job id.
    pub id: u64,
    /// `"queued"`, `"leased"`, `"done"`, `"failed"`, or `"unknown"`.
    pub state: String,
    /// The output, present when `state` is `"done"` (and, as the NaN
    /// placeholder, `"failed"`).
    pub output: Option<JobOutput>,
    /// Terminal error, present when `state` is `"failed"`.
    pub error: Option<String>,
    /// Attempts consumed so far.
    pub attempts: u32,
}

impl PollResult {
    /// True when the job has reached a terminal state.
    pub fn is_terminal(&self) -> bool {
        self.state == "done" || self.state == "failed"
    }

    /// Renders the poll-result object.
    pub fn to_json(&self) -> String {
        let mut s = format!("{{\"id\": {}, \"state\": \"{}\"", self.id, self.state);
        if let Some(out) = &self.output {
            s.push_str(&format!(", \"output\": {}", out.to_json()));
        }
        if let Some(err) = &self.error {
            s.push_str(&format!(", \"error\": \"{}\"", json_escape(err)));
        }
        s.push_str(&format!(", \"attempts\": {}}}", self.attempts));
        s
    }

    /// Parses one poll-result object.
    ///
    /// # Errors
    ///
    /// Describes the malformed field.
    pub fn from_json(v: &JsonValue) -> Result<Self, String> {
        let obj = v.as_object().ok_or("poll result must be an object")?;
        Ok(Self {
            id: obj
                .get("id")
                .and_then(JsonValue::as_u64)
                .ok_or("poll result needs `id`")?,
            state: obj
                .get("state")
                .and_then(JsonValue::as_str)
                .ok_or("poll result needs `state`")?
                .to_string(),
            output: match obj.get("output") {
                Some(v) => Some(JobOutput::from_json(v)?),
                None => None,
            },
            error: obj
                .get("error")
                .and_then(JsonValue::as_str)
                .map(str::to_string),
            attempts: obj.get("attempts").and_then(JsonValue::as_u64).unwrap_or(0) as u32,
        })
    }
}

/// Parses a response line into its object view, checking the `ok` flag.
///
/// # Errors
///
/// The server's error message on `"ok": false`, or a description of a
/// malformed response.
pub fn parse_response(line: &str) -> Result<JsonValue, String> {
    let v = parse_json(line).map_err(|e| e.to_string())?;
    let obj = v.as_object().ok_or("response must be a JSON object")?;
    match obj.get("ok") {
        Some(JsonValue::Bool(true)) => Ok(v),
        Some(JsonValue::Bool(false)) => Err(obj
            .get("error")
            .and_then(JsonValue::as_str)
            .unwrap_or("unspecified server error")
            .to_string()),
        _ => Err("response missing `ok`".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpr_bench::ExperimentConfig;
    use vpr_core::RenameScheme;
    use vpr_trace::Benchmark;

    fn spec() -> JobSpec {
        JobSpec {
            workload: Benchmark::Hydro2d.into(),
            scheme: RenameScheme::Conventional,
            physical_regs: 48,
            exp: ExperimentConfig::quick(),
        }
    }

    #[test]
    fn requests_round_trip() {
        let line = submit_line(&[spec(), spec()]);
        match parse_request(&line).unwrap() {
            Request::Submit(jobs) => {
                assert_eq!(jobs.len(), 2);
                assert_eq!(jobs[0], spec());
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(
            parse_request(&poll_line(&[3, 9])).unwrap(),
            Request::Poll(vec![3, 9])
        );
        assert_eq!(
            parse_request("{\"op\": \"status\"}").unwrap(),
            Request::Status
        );
        assert_eq!(
            parse_request("{\"op\": \"metrics\"}").unwrap(),
            Request::Metrics
        );
        assert_eq!(
            parse_request("{\"op\": \"shutdown\"}").unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn malformed_requests_are_rejected_with_reasons() {
        for (line, needle) in [
            ("nonsense", "bad literal"),
            ("{\"op\": \"warp\"}", "unknown op"),
            ("{\"op\": \"submit\"}", "jobs"),
            ("{\"op\": \"submit\", \"jobs\": []}", "at least one"),
            ("{\"op\": \"poll\", \"ids\": [\"x\"]}", "integers"),
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(err.contains(needle), "{line} -> {err}");
        }
    }

    #[test]
    fn poll_results_round_trip_and_error_lines_parse() {
        let r = PollResult {
            id: 12,
            state: "failed".into(),
            output: Some(JobOutput {
                metrics: vpr_bench::sweep::PointMetrics::failed(),
                outcome: vpr_bench::checkpoints::CheckpointOutcome::NoStore,
                note: None,
            }),
            error: Some("job 12 failed after 4 attempts: injected".into()),
            attempts: 4,
        };
        let parsed = PollResult::from_json(&parse_json(&r.to_json()).unwrap()).unwrap();
        assert_eq!(parsed.id, 12);
        assert!(parsed.is_terminal());
        assert!(parsed.output.unwrap().metrics.is_failed());
        assert_eq!(parsed.attempts, 4);

        let err = parse_response(&error_line("queue \"wedged\"")).unwrap_err();
        assert_eq!(err, "queue \"wedged\"");
        assert!(parse_response("{\"ok\": true, \"ids\": [1]}").is_ok());
    }
}
