//! A reconnecting client for the daemon.
//!
//! The transport discipline is deliberately dumb: **one request, one
//! response, one connection**, retried with a bounded backoff until the
//! daemon answers or the client's own deadline passes. That shape makes
//! every failure mode — injected client-disconnects, a daemon killed
//! mid-run and restarted, a socket that does not exist yet — the same
//! case: reconnect and re-ask. Submissions are identified by the ids the
//! daemon returns, and results are journalled server-side, so re-asking
//! never changes an answer.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use vpr_bench::jobs::JobSpec;
use vpr_snap::manifest::JsonValue;

use crate::protocol::{parse_response, poll_line, submit_line, PollResult};

/// A daemon endpoint plus the client's patience.
#[derive(Debug, Clone)]
pub struct Client {
    socket: PathBuf,
    /// Total time to keep retrying one request (covers daemon restarts).
    pub timeout: Duration,
    /// Delay between reconnect attempts.
    pub retry_delay: Duration,
}

impl Client {
    /// A client for `socket` with a 60 s per-request patience.
    pub fn new(socket: impl Into<PathBuf>) -> Self {
        Self {
            socket: socket.into(),
            timeout: Duration::from_secs(60),
            retry_delay: Duration::from_millis(100),
        }
    }

    /// The socket path.
    pub fn socket(&self) -> &Path {
        &self.socket
    }

    /// Sends one request line and returns the parsed response object,
    /// reconnecting as needed until [`Client::timeout`].
    ///
    /// # Errors
    ///
    /// The server's error string, or the last transport error when the
    /// deadline passes without an answer.
    pub fn request(&self, line: &str) -> Result<JsonValue, String> {
        let deadline = Instant::now() + self.timeout;
        loop {
            let last = match self.exchange_once(line) {
                Ok(response) => return parse_response(&response),
                Err(e) => e,
            };
            if Instant::now() >= deadline {
                return Err(format!("request timed out: {last}"));
            }
            std::thread::sleep(self.retry_delay);
        }
    }

    fn exchange_once(&self, line: &str) -> Result<String, String> {
        let stream = UnixStream::connect(&self.socket).map_err(|e| format!("connect: {e}"))?;
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .map_err(|e| format!("timeout setup: {e}"))?;
        let mut writer = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
        writer
            .write_all(format!("{line}\n").as_bytes())
            .and_then(|()| writer.flush())
            .map_err(|e| format!("send: {e}"))?;
        let mut response = String::new();
        BufReader::new(stream)
            .read_line(&mut response)
            .map_err(|e| format!("receive: {e}"))?;
        if response.is_empty() {
            // The daemon dropped the connection (injected disconnect or
            // a crash) before answering.
            return Err("connection closed before response".into());
        }
        Ok(response)
    }

    /// Submits jobs and returns the daemon-assigned ids (one per job, in
    /// order). The ids are durable: the daemon journalled every one of
    /// them before this call returned.
    ///
    /// # Errors
    ///
    /// Transport or server errors, verbatim.
    pub fn submit(&self, jobs: &[JobSpec]) -> Result<Vec<u64>, String> {
        let v = self.request(&submit_line(jobs))?;
        let obj = v.as_object().ok_or("submit response must be an object")?;
        let ids = obj
            .get("ids")
            .and_then(JsonValue::as_array)
            .ok_or("submit response missing `ids`")?;
        let ids: Option<Vec<u64>> = ids.iter().map(JsonValue::as_u64).collect();
        let ids = ids.ok_or("submit ids must be integers")?;
        if ids.len() != jobs.len() {
            return Err(format!(
                "submitted {} jobs but received {} ids",
                jobs.len(),
                ids.len()
            ));
        }
        Ok(ids)
    }

    /// Polls once for the given ids.
    ///
    /// # Errors
    ///
    /// Transport or server errors, verbatim.
    pub fn poll(&self, ids: &[u64]) -> Result<Vec<PollResult>, String> {
        let v = self.request(&poll_line(ids))?;
        let obj = v.as_object().ok_or("poll response must be an object")?;
        obj.get("results")
            .and_then(JsonValue::as_array)
            .ok_or("poll response missing `results`")?
            .iter()
            .map(PollResult::from_json)
            .collect()
    }

    /// Polls until every id reaches a terminal state (or `deadline`
    /// passes), surviving daemon restarts in between. Returns results in
    /// the order of `ids`.
    ///
    /// # Errors
    ///
    /// The ids still pending when the deadline passes, or any transport
    /// error that outlived the per-request patience.
    pub fn wait(&self, ids: &[u64], deadline: Duration) -> Result<Vec<PollResult>, String> {
        let stop = Instant::now() + deadline;
        loop {
            let results = self.poll(ids)?;
            if results.iter().all(PollResult::is_terminal) {
                return Ok(results);
            }
            if Instant::now() >= stop {
                let pending: Vec<String> = results
                    .iter()
                    .filter(|r| !r.is_terminal())
                    .map(|r| format!("{} ({})", r.id, r.state))
                    .collect();
                return Err(format!("jobs still pending: {}", pending.join(", ")));
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    /// Fetches the service metrics: the JSON object and the Prometheus
    /// text exposition.
    ///
    /// # Errors
    ///
    /// Transport or server errors, verbatim.
    pub fn metrics(&self) -> Result<(String, String), String> {
        let v = self.request("{\"op\": \"metrics\"}")?;
        let obj = v.as_object().ok_or("metrics response must be an object")?;
        let prom = obj
            .get("prometheus")
            .and_then(JsonValue::as_str)
            .ok_or("metrics response missing `prometheus`")?
            .to_string();
        // Re-render the metrics object through the parsed value is
        // lossy for this purpose; return the raw JSON sub-document by
        // slicing is overkill — the Prometheus text is the contract.
        let json = obj
            .get("metrics")
            .map(render_value)
            .ok_or("metrics response missing `metrics`")?;
        Ok((json, prom))
    }

    /// Asks the daemon to shut down gracefully.
    ///
    /// # Errors
    ///
    /// Transport errors, verbatim.
    pub fn shutdown(&self) -> Result<(), String> {
        self.request("{\"op\": \"shutdown\"}").map(|_| ())
    }
}

/// Re-renders a parsed JSON value (used for the metrics sub-document;
/// numbers preserve their parsed forms).
fn render_value(v: &JsonValue) -> String {
    match v {
        JsonValue::Null => "null".into(),
        JsonValue::Bool(b) => b.to_string(),
        JsonValue::Number(n) => n.to_string(),
        JsonValue::Float(f) => format!("{f}"),
        JsonValue::String(s) => format!("\"{}\"", vpr_bench::sweep::json_escape(s)),
        JsonValue::Array(items) => {
            let inner: Vec<String> = items.iter().map(render_value).collect();
            format!("[{}]", inner.join(", "))
        }
        JsonValue::Object(fields) => {
            let inner: Vec<String> = fields
                .iter()
                .map(|(k, v)| {
                    format!(
                        "\"{}\": {}",
                        vpr_bench::sweep::json_escape(k),
                        render_value(v)
                    )
                })
                .collect();
            format!("{{{}}}", inner.join(", "))
        }
    }
}
