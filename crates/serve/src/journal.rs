//! The write-ahead job journal (`jobs.wal`).
//!
//! Every job the daemon **acknowledges** is already on disk: `submit`
//! appends a `job` record and fsyncs before the acknowledgement leaves
//! the process, and every terminal outcome appends a `done`/`failed`
//! record the same way. On startup the daemon replays the journal:
//! records with a terminal outcome are served from the journal without
//! recomputation, everything else re-enters the queue. A crash —
//! SIGTERM, SIGKILL, power loss — therefore loses no accepted work and
//! recomputes no finished work.
//!
//! ### Append discipline
//!
//! The journal is append-only, one JSON record per line. Unlike the
//! artefact files (whole-file [`vpr_snap::atomic_write`]), a log cannot
//! be atomically replaced on every append, so it borrows the other half
//! of that discipline: write at a known offset, `fdatasync`, then **read
//! the tail back** and compare against the intended bytes. Only a
//! verified append is acknowledged; a torn or corrupted append (the
//! [`vpr_snap::faults::on_journal_append`] hook injects exactly these)
//! is truncated away and retried. An acknowledgement can therefore never
//! cover a record that would be unreadable on replay.
//!
//! ### Replay discipline
//!
//! Replay parses the journal line by line and keeps the longest valid
//! prefix. A torn tail — the one shape a crash between `write` and
//! `fsync` can leave, since appends are verified — is truncated off;
//! whatever it contained was never acknowledged.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use vpr_bench::jobs::{JobOutput, JobSpec};
use vpr_bench::sweep::json_escape;
use vpr_snap::faults;
use vpr_snap::manifest::{parse_json, JsonValue};

/// File name of the journal inside the daemon's working directory.
pub const JOURNAL_FILE: &str = "jobs.wal";

/// One journal record.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A job was accepted. Written (and fsynced) before the submit
    /// acknowledgement.
    Job {
        /// The daemon-assigned job id.
        id: u64,
        /// What to run.
        spec: JobSpec,
    },
    /// A job completed successfully.
    Done {
        /// The job id.
        id: u64,
        /// Its output (full round-trip precision).
        output: JobOutput,
    },
    /// A job exhausted its retry budget and degraded to a structured
    /// failure.
    Failed {
        /// The job id.
        id: u64,
        /// The terminal error.
        error: String,
        /// Attempts consumed.
        attempts: u32,
    },
}

impl Record {
    /// Renders the record as one JSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            Record::Job { id, spec } => {
                format!(
                    "{{\"rec\": \"job\", \"id\": {id}, \"spec\": {}}}",
                    spec.to_json()
                )
            }
            Record::Done { id, output } => {
                format!(
                    "{{\"rec\": \"done\", \"id\": {id}, \"output\": {}}}",
                    output.to_json()
                )
            }
            Record::Failed {
                id,
                error,
                attempts,
            } => format!(
                "{{\"rec\": \"failed\", \"id\": {id}, \"attempts\": {attempts}, \
                 \"error\": \"{}\"}}",
                json_escape(error)
            ),
        }
    }

    /// Parses one journal line.
    ///
    /// # Errors
    ///
    /// Describes the malformed field; replay treats any error as the
    /// start of a torn tail.
    pub fn parse(line: &str) -> Result<Record, String> {
        let v = parse_json(line).map_err(|e| e.to_string())?;
        let obj = v.as_object().ok_or("record must be a JSON object")?;
        let id = obj
            .get("id")
            .and_then(JsonValue::as_u64)
            .ok_or("record needs a numeric `id`")?;
        match obj.get("rec").and_then(JsonValue::as_str) {
            Some("job") => Ok(Record::Job {
                id,
                spec: JobSpec::from_json(obj.get("spec").ok_or("job record needs `spec`")?)?,
            }),
            Some("done") => Ok(Record::Done {
                id,
                output: JobOutput::from_json(
                    obj.get("output").ok_or("done record needs `output`")?,
                )?,
            }),
            Some("failed") => Ok(Record::Failed {
                id,
                error: obj
                    .get("error")
                    .and_then(JsonValue::as_str)
                    .ok_or("failed record needs `error`")?
                    .to_string(),
                attempts: obj
                    .get("attempts")
                    .and_then(JsonValue::as_u64)
                    .ok_or("failed record needs `attempts`")? as u32,
            }),
            other => Err(format!("unknown record type {other:?}")),
        }
    }
}

/// The open journal: an append handle plus the verified length.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: File,
    /// Bytes of verified (replayable) content; everything beyond is
    /// unacknowledged garbage to truncate.
    len: u64,
}

/// What [`Journal::open`] found on disk.
#[derive(Debug, Default)]
pub struct Replay {
    /// The valid records, in append order.
    pub records: Vec<Record>,
    /// Bytes of torn tail truncated away (0 on a clean journal).
    pub torn_bytes: u64,
}

impl Journal {
    /// Opens (creating if absent) the journal in `dir` and replays it.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors opening or reading the file. Torn content
    /// is not an error — it is truncated and reported in the [`Replay`].
    pub fn open(dir: &Path) -> std::io::Result<(Journal, Replay)> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(JOURNAL_FILE);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        // Longest valid prefix: complete lines that parse as records.
        let mut replay = Replay::default();
        let mut good = 0usize;
        let mut cursor = 0usize;
        while cursor < bytes.len() {
            let Some(nl) = bytes[cursor..].iter().position(|&b| b == b'\n') else {
                break; // incomplete final line: torn
            };
            let line = &bytes[cursor..cursor + nl];
            match std::str::from_utf8(line)
                .ok()
                .and_then(|s| Record::parse(s).ok())
            {
                Some(rec) => {
                    replay.records.push(rec);
                    cursor += nl + 1;
                    good = cursor;
                }
                None => break, // torn or corrupt: cut here
            }
        }
        replay.torn_bytes = (bytes.len() - good) as u64;
        if replay.torn_bytes > 0 {
            file.set_len(good as u64)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok((
            Journal {
                path,
                file,
                len: good as u64,
            },
            replay,
        ))
    }

    /// The journal's path (fault plans target its name).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record durably: write, `fdatasync`, read back and
    /// verify. A corrupted or failed append (injected or real) is
    /// truncated away and retried once; only a verified append returns
    /// `Ok`.
    ///
    /// # Errors
    ///
    /// The append that could not be verified after the retry.
    pub fn append(&mut self, record: &Record) -> std::io::Result<()> {
        let canonical = {
            let mut l = record.to_line();
            l.push('\n');
            l.into_bytes()
        };
        let mut last_err: Option<std::io::Error> = None;
        for _attempt in 0..2 {
            // The fault hook sees (and may corrupt) the bytes about to be
            // written — the verification below must catch exactly that.
            let mut bytes = canonical.clone();
            if let Err(e) = faults::on_journal_append(&self.path, &mut bytes) {
                last_err = Some(e);
                continue;
            }
            let write = (|| -> std::io::Result<()> {
                self.file.seek(SeekFrom::Start(self.len))?;
                self.file.write_all(&bytes)?;
                self.file.sync_data()?;
                Ok(())
            })();
            if let Err(e) = write {
                let _ = self.rewind_to_len();
                last_err = Some(e);
                continue;
            }
            match self.tail_matches(&canonical) {
                Ok(true) => {
                    self.len += canonical.len() as u64;
                    return Ok(());
                }
                Ok(false) => {
                    self.rewind_to_len()?;
                    last_err = Some(std::io::Error::other(
                        "journal append verification failed (torn or corrupt tail)",
                    ));
                }
                Err(e) => {
                    let _ = self.rewind_to_len();
                    last_err = Some(e);
                }
            }
        }
        Err(last_err.unwrap_or_else(|| std::io::Error::other("journal append failed")))
    }

    /// Truncates unverified bytes off the tail.
    fn rewind_to_len(&mut self) -> std::io::Result<()> {
        self.file.set_len(self.len)?;
        self.file.sync_data()?;
        self.file.seek(SeekFrom::End(0))?;
        Ok(())
    }

    /// Reads the tail back from disk and compares it to `expected`.
    fn tail_matches(&mut self, expected: &[u8]) -> std::io::Result<bool> {
        // A fresh handle, so the comparison sees what replay would see,
        // not this handle's buffered view.
        let mut reread = File::open(&self.path)?;
        reread.seek(SeekFrom::Start(self.len))?;
        let mut tail = Vec::new();
        reread.read_to_end(&mut tail)?;
        Ok(tail == expected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpr_bench::ExperimentConfig;
    use vpr_core::RenameScheme;
    use vpr_snap::faults::{FaultKind, FaultOp, FaultPlan};
    use vpr_trace::Benchmark;

    fn spec() -> JobSpec {
        JobSpec {
            workload: Benchmark::Swim.into(),
            scheme: RenameScheme::VirtualPhysicalWriteback { nrr: 32 },
            physical_regs: 64,
            exp: ExperimentConfig::quick(),
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("vpr-serve-journal-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn records_round_trip_through_lines() {
        let records = [
            Record::Job {
                id: 3,
                spec: spec(),
            },
            Record::Done {
                id: 3,
                output: vpr_bench::execute_job(
                    &JobSpec {
                        exp: ExperimentConfig {
                            warmup: 100,
                            measure: 500,
                            ..ExperimentConfig::quick()
                        },
                        ..spec()
                    },
                    None,
                ),
            },
            Record::Failed {
                id: 4,
                error: "injected fault: worker kill (swim/vp-wb-nrr32@64r)".into(),
                attempts: 4,
            },
        ];
        for r in &records {
            let line = r.to_line();
            assert!(!line.contains('\n'));
            let parsed = Record::parse(&line).unwrap();
            // JobOutput carries f64s; compare through the line rendering,
            // which is the round-trip representation itself.
            assert_eq!(parsed.to_line(), line);
        }
    }

    #[test]
    fn journal_replays_what_it_acknowledged() {
        let dir = tmp("replay");
        let (mut j, replay) = Journal::open(&dir).unwrap();
        assert!(replay.records.is_empty());
        j.append(&Record::Job {
            id: 1,
            spec: spec(),
        })
        .unwrap();
        j.append(&Record::Job {
            id: 2,
            spec: spec(),
        })
        .unwrap();
        j.append(&Record::Failed {
            id: 1,
            error: "x".into(),
            attempts: 2,
        })
        .unwrap();
        drop(j);
        let (_, replay) = Journal::open(&dir).unwrap();
        assert_eq!(replay.torn_bytes, 0);
        assert_eq!(replay.records.len(), 3);
        assert!(matches!(replay.records[0], Record::Job { id: 1, .. }));
        assert!(matches!(replay.records[2], Record::Failed { id: 1, .. }));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = tmp("torn");
        let (mut j, _) = Journal::open(&dir).unwrap();
        j.append(&Record::Job {
            id: 1,
            spec: spec(),
        })
        .unwrap();
        drop(j);
        // Simulate a crash mid-append: garbage with no newline.
        let path = dir.join(JOURNAL_FILE);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"rec\": \"job\", \"id\": 9, \"sp").unwrap();
        drop(f);
        let (mut j, replay) = Journal::open(&dir).unwrap();
        assert_eq!(replay.records.len(), 1);
        assert!(replay.torn_bytes > 0);
        // The journal stays appendable after truncation.
        j.append(&Record::Job {
            id: 2,
            spec: spec(),
        })
        .unwrap();
        drop(j);
        let (_, replay) = Journal::open(&dir).unwrap();
        assert_eq!(replay.records.len(), 2);
        assert_eq!(replay.torn_bytes, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_append_faults_never_ack_a_lie() {
        let _x = faults::exclusive();
        let dir = tmp("faults");
        let (mut j, _) = Journal::open(&dir).unwrap();
        for kind in [FaultKind::IoError, FaultKind::Truncate, FaultKind::BitFlip] {
            faults::arm(FaultPlan {
                kind,
                op: FaultOp::JournalAppend,
                target: JOURNAL_FILE.into(),
                nth: 0,
                seed: 13,
            });
            // The single-shot fault hits the first attempt; the retry
            // verifies clean. Either way `Ok` means durable.
            j.append(&Record::Job {
                id: 7,
                spec: spec(),
            })
            .unwrap();
            assert!(faults::disarm().is_some(), "{kind:?} fired");
        }
        drop(j);
        let (_, replay) = Journal::open(&dir).unwrap();
        assert_eq!(replay.records.len(), 3);
        assert_eq!(replay.torn_bytes, 0);
        for r in &replay.records {
            assert!(matches!(r, Record::Job { id: 7, .. }));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
