//! The daemon: listener, worker pool, lease supervisor, and the shared
//! job table everything coordinates through.
//!
//! ### Ownership of a job
//!
//! A job moves `Queued → Leased → {Done, Failed}` with two loops back:
//! a worker death or expired lease sends it to `Backoff` (capped
//! exponential delay per the [`RetryPolicy`]) and the supervisor returns
//! it to `Queued` when the delay elapses. Terminal states are sticky:
//! the first completion wins, and a straggling duplicate execution (its
//! lease was reclaimed while it was still running) is discarded — which
//! is harmless, because jobs are deterministic and both executions
//! produced the same bits.
//!
//! ### Crash safety
//!
//! Accepted work and terminal outcomes go through the
//! [`crate::journal`] before they are visible on the wire; everything
//! else (leases, backoff timers, the ready queue) is reconstructible
//! state that a restart simply resets: replayed non-terminal jobs start
//! `Queued` with a fresh retry budget.

use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use vpr_bench::checkpoints::{CheckpointOutcome, CheckpointStore};
use vpr_bench::jobs::{execute_job, JobOutput, JobSpec};
use vpr_core::par::RetryPolicy;
use vpr_obs::telemetry::{JobOutcome, JobTelemetry, RunTelemetry};
use vpr_obs::ServeMetrics;
use vpr_snap::faults;

use crate::journal::{Journal, Record};
use crate::protocol::{error_line, parse_request, PollResult, Request};

/// Subdirectory of the working dir holding the shared checkpoint store.
pub const STORE_SUBDIR: &str = "checkpoints";
/// Service run-telemetry artefact inside the working dir.
pub const TELEMETRY_FILE: &str = "serve.run.telemetry.json";

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Unix-domain socket path to listen on.
    pub socket: PathBuf,
    /// Working directory: journal, checkpoint store, telemetry.
    pub dir: PathBuf,
    /// Worker count (0 = [`vpr_core::par::default_jobs`]).
    pub workers: usize,
    /// Lease deadline per job attempt, in milliseconds.
    pub lease_ms: u64,
    /// Retry discipline for worker deaths and expired leases.
    pub retry: RetryPolicy,
    /// Run each job in a child `vpr-serve exec-job` process (real
    /// preemption at the lease deadline) instead of an in-process
    /// worker thread.
    pub shard: bool,
    /// Test hook: abort the process (as SIGKILL would) after this many
    /// journalled job records — the deterministic "crash at the worst
    /// moment" the kill-and-restart drill uses.
    pub abort_after_appends: Option<u64>,
}

impl ServeConfig {
    /// A config with the production defaults: auto worker count, 30 s
    /// leases, 3 retries backing off 100 ms → 2 s.
    pub fn new(socket: impl Into<PathBuf>, dir: impl Into<PathBuf>) -> Self {
        Self {
            socket: socket.into(),
            dir: dir.into(),
            workers: 0,
            lease_ms: 30_000,
            retry: RetryPolicy::backoff(3, 100, 2_000),
            shard: false,
            abort_after_appends: None,
        }
    }
}

#[derive(Debug, Clone)]
enum JobState {
    /// In the ready queue (or about to be popped from it).
    Queued,
    /// Waiting out a retry delay; the supervisor re-queues it.
    Backoff { until: Instant },
    /// On a worker, with a reclaim deadline.
    Leased { deadline: Instant },
    /// Terminal success.
    Done { output: JobOutput },
    /// Terminal degradation: retry budget exhausted.
    Failed { error: String, attempts: u32 },
}

#[derive(Debug)]
struct JobEntry {
    spec: JobSpec,
    state: JobState,
    /// Attempts started so far.
    attempts: u32,
    submitted: Instant,
}

#[derive(Default)]
struct Counters {
    accepted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    lease_expiries: AtomicU64,
    retries: AtomicU64,
    dedup_hits: AtomicU64,
    replay_hits: AtomicU64,
    job_appends: AtomicU64,
}

struct Inner {
    cfg: ServeConfig,
    jobs: Mutex<HashMap<u64, JobEntry>>,
    ready: Mutex<VecDeque<u64>>,
    ready_cv: Condvar,
    journal: Mutex<Journal>,
    store: Mutex<CheckpointStore>,
    flights: Mutex<HashMap<String, Arc<Mutex<()>>>>,
    telemetry: Mutex<RunTelemetry>,
    counters: Counters,
    next_id: AtomicU64,
    shutdown: AtomicBool,
    started: Instant,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A running daemon (in-process handle). Dropping without [`Server::stop`]
/// leaves threads running until the process exits; tests should stop.
pub struct Server {
    inner: Arc<Inner>,
    threads: Vec<std::thread::JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl Server {
    /// Opens the journal, replays it, binds the socket, and spawns the
    /// listener, workers, and lease supervisor.
    ///
    /// # Errors
    ///
    /// Propagates journal, store-directory, and socket-bind failures.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Server> {
        std::fs::create_dir_all(&cfg.dir)?;
        let (journal, replay) = Journal::open(&cfg.dir)?;
        let (store, store_note) = CheckpointStore::open_resilient(&cfg.dir.join(STORE_SUBDIR));
        if let Some(note) = store_note {
            eprintln!("vpr-serve: checkpoint store degraded: {note}");
        }

        // Rebuild the job table: terminal records win over their job
        // record; everything else re-queues with a fresh budget.
        let mut jobs: HashMap<u64, JobEntry> = HashMap::new();
        let mut max_id = 0u64;
        let now = Instant::now();
        let mut replayed = 0u64;
        for rec in replay.records {
            match rec {
                Record::Job { id, spec } => {
                    max_id = max_id.max(id);
                    jobs.insert(
                        id,
                        JobEntry {
                            spec,
                            state: JobState::Queued,
                            attempts: 0,
                            submitted: now,
                        },
                    );
                }
                Record::Done { id, output } => {
                    max_id = max_id.max(id);
                    if let Some(entry) = jobs.get_mut(&id) {
                        entry.state = JobState::Done { output };
                        replayed += 1;
                    }
                }
                Record::Failed {
                    id,
                    error,
                    attempts,
                } => {
                    max_id = max_id.max(id);
                    if let Some(entry) = jobs.get_mut(&id) {
                        entry.state = JobState::Failed { error, attempts };
                        entry.attempts = attempts;
                    }
                }
            }
        }
        let ready: VecDeque<u64> = {
            let mut ids: Vec<u64> = jobs
                .iter()
                .filter(|(_, e)| matches!(e.state, JobState::Queued))
                .map(|(&id, _)| id)
                .collect();
            ids.sort_unstable();
            ids.into()
        };

        // A stale socket file from a killed daemon blocks the bind.
        let _ = std::fs::remove_file(&cfg.socket);
        let listener = UnixListener::bind(&cfg.socket)?;
        listener.set_nonblocking(true)?;

        let workers = if cfg.workers == 0 {
            vpr_core::par::default_jobs()
        } else {
            cfg.workers
        };
        let inner = Arc::new(Inner {
            telemetry: Mutex::new(RunTelemetry::new(workers)),
            cfg,
            jobs: Mutex::new(jobs),
            ready: Mutex::new(ready),
            ready_cv: Condvar::new(),
            journal: Mutex::new(journal),
            store: Mutex::new(store),
            flights: Mutex::new(HashMap::new()),
            counters: Counters::default(),
            next_id: AtomicU64::new(max_id + 1),
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
        });
        inner
            .counters
            .replay_hits
            .store(replayed, Ordering::Relaxed);
        inner.ready_cv.notify_all();

        let handlers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(Mutex::new(Vec::new()));
        let mut threads = Vec::new();
        {
            let inner = Arc::clone(&inner);
            let handlers = Arc::clone(&handlers);
            threads.push(std::thread::spawn(move || {
                listen_loop(&inner, listener, &handlers)
            }));
        }
        for w in 0..workers {
            let inner = Arc::clone(&inner);
            threads.push(std::thread::spawn(move || worker_loop(&inner, w)));
        }
        {
            let inner = Arc::clone(&inner);
            threads.push(std::thread::spawn(move || supervisor_loop(&inner)));
        }
        Ok(Server {
            inner,
            threads,
            handlers,
        })
    }

    /// Snapshot of the service metrics.
    pub fn metrics(&self) -> ServeMetrics {
        snapshot_metrics(&self.inner)
    }

    /// True once a shutdown request was received (the binary's main loop
    /// polls this).
    pub fn shutdown_requested(&self) -> bool {
        self.inner.shutdown.load(Ordering::SeqCst)
    }

    /// Graceful stop: drains the threads and removes the socket file.
    /// In-flight jobs finish their current attempt; nothing is lost —
    /// unfinished jobs replay from the journal on the next start.
    pub fn stop(self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.ready_cv.notify_all();
        for t in self.threads {
            let _ = t.join();
        }
        let handlers = std::mem::take(&mut *lock(&self.handlers));
        for t in handlers {
            let _ = t.join();
        }
        let _ = std::fs::remove_file(&self.inner.cfg.socket);
    }
}

fn snapshot_metrics(inner: &Inner) -> ServeMetrics {
    let queue_depth = lock(&inner.jobs)
        .values()
        .filter(|e| {
            matches!(
                e.state,
                JobState::Queued | JobState::Backoff { .. } | JobState::Leased { .. }
            )
        })
        .count() as u64;
    let c = &inner.counters;
    ServeMetrics {
        jobs_accepted: c.accepted.load(Ordering::Relaxed),
        jobs_completed: c.completed.load(Ordering::Relaxed),
        jobs_failed: c.failed.load(Ordering::Relaxed),
        queue_depth,
        lease_expiries: c.lease_expiries.load(Ordering::Relaxed),
        retries: c.retries.load(Ordering::Relaxed),
        dedup_hits: c.dedup_hits.load(Ordering::Relaxed),
        replay_hits: c.replay_hits.load(Ordering::Relaxed),
    }
}

fn listen_loop(
    inner: &Arc<Inner>,
    listener: UnixListener,
    handlers: &Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    let mut conn_seq = 0u64;
    while !inner.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                conn_seq += 1;
                let inner = Arc::clone(inner);
                let label = format!("conn-{conn_seq}");
                let handle = std::thread::spawn(move || handle_connection(&inner, stream, &label));
                lock(handlers).push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn handle_connection(inner: &Arc<Inner>, stream: UnixStream, label: &str) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut stream = stream;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return, // client hung up
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let response = match parse_request(trimmed) {
            Ok(req) => handle_request(inner, req),
            Err(e) => error_line(&format!("bad request: {e}")),
        };
        // Injected client-disconnect: drop the connection before the
        // response leaves. The client's reconnect-and-repoll discipline
        // must absorb this without ever seeing a torn result.
        if faults::client_disconnects(label) {
            return;
        }
        if stream
            .write_all(format!("{response}\n").as_bytes())
            .and_then(|()| stream.flush())
            .is_err()
        {
            return;
        }
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
    }
}

fn handle_request(inner: &Arc<Inner>, req: Request) -> String {
    match req {
        Request::Submit(specs) => {
            let mut ids = Vec::with_capacity(specs.len());
            for spec in specs {
                let id = inner.next_id.fetch_add(1, Ordering::SeqCst);
                // Durable first, visible second: the ack below covers
                // only journalled jobs.
                if let Err(e) = lock(&inner.journal).append(&Record::Job {
                    id,
                    spec: spec.clone(),
                }) {
                    return error_line(&format!(
                        "journal append failed after {} accepted: {e}",
                        ids.len()
                    ));
                }
                let appended = inner.counters.job_appends.fetch_add(1, Ordering::SeqCst) + 1;
                if let Some(limit) = inner.cfg.abort_after_appends {
                    if appended >= limit {
                        // The drill's simulated SIGKILL: no destructors,
                        // no flushes — only the journal survives.
                        std::process::abort();
                    }
                }
                lock(&inner.jobs).insert(
                    id,
                    JobEntry {
                        spec,
                        state: JobState::Queued,
                        attempts: 0,
                        submitted: Instant::now(),
                    },
                );
                lock(&inner.ready).push_back(id);
                inner.ready_cv.notify_one();
                inner.counters.accepted.fetch_add(1, Ordering::Relaxed);
                ids.push(id.to_string());
            }
            format!("{{\"ok\": true, \"ids\": [{}]}}", ids.join(", "))
        }
        Request::Poll(ids) => {
            let jobs = lock(&inner.jobs);
            let results: Vec<String> = ids
                .iter()
                .map(|id| {
                    let r = match jobs.get(id) {
                        None => PollResult {
                            id: *id,
                            state: "unknown".into(),
                            output: None,
                            error: None,
                            attempts: 0,
                        },
                        Some(entry) => {
                            let (state, output, error, attempts) = match &entry.state {
                                JobState::Queued | JobState::Backoff { .. } => {
                                    ("queued", None, None, entry.attempts)
                                }
                                JobState::Leased { .. } => ("leased", None, None, entry.attempts),
                                JobState::Done { output } => {
                                    ("done", Some(output.clone()), None, entry.attempts)
                                }
                                JobState::Failed { error, attempts } => (
                                    "failed",
                                    Some(JobOutput {
                                        metrics: vpr_bench::sweep::PointMetrics::failed(),
                                        outcome: CheckpointOutcome::NoStore,
                                        note: None,
                                    }),
                                    Some(error.clone()),
                                    *attempts,
                                ),
                            };
                            PollResult {
                                id: *id,
                                state: state.into(),
                                output,
                                error,
                                attempts,
                            }
                        }
                    };
                    r.to_json()
                })
                .collect();
            format!("{{\"ok\": true, \"results\": [{}]}}", results.join(", "))
        }
        Request::Status => {
            let jobs = lock(&inner.jobs);
            let mut queued = 0u64;
            let mut leased = 0u64;
            let mut done = 0u64;
            let mut failed = 0u64;
            for e in jobs.values() {
                match e.state {
                    JobState::Queued | JobState::Backoff { .. } => queued += 1,
                    JobState::Leased { .. } => leased += 1,
                    JobState::Done { .. } => done += 1,
                    JobState::Failed { .. } => failed += 1,
                }
            }
            format!(
                "{{\"ok\": true, \"queued\": {queued}, \"leased\": {leased}, \
                 \"done\": {done}, \"failed\": {failed}}}"
            )
        }
        Request::Metrics => {
            let m = snapshot_metrics(inner);
            format!(
                "{{\"ok\": true, \"metrics\": {}, \"prometheus\": \"{}\"}}",
                m.to_json_value(),
                vpr_bench::sweep::json_escape(&m.to_prometheus())
            )
        }
        Request::Shutdown => {
            inner.shutdown.store(true, Ordering::SeqCst);
            inner.ready_cv.notify_all();
            "{\"ok\": true}".to_string()
        }
    }
}

fn worker_loop(inner: &Arc<Inner>, _worker: usize) {
    loop {
        // Pop a ready id, or park until one appears / shutdown.
        let id = {
            let mut ready = lock(&inner.ready);
            loop {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(id) = ready.pop_front() {
                    break id;
                }
                let (guard, _) = inner
                    .ready_cv
                    .wait_timeout(ready, Duration::from_millis(100))
                    .unwrap_or_else(PoisonError::into_inner);
                ready = guard;
            }
        };
        // Lease it (skip stale queue references).
        let (spec, attempt, queue_wait) = {
            let mut jobs = lock(&inner.jobs);
            let Some(entry) = jobs.get_mut(&id) else {
                continue;
            };
            if !matches!(entry.state, JobState::Queued) {
                continue;
            }
            entry.attempts += 1;
            entry.state = JobState::Leased {
                deadline: Instant::now() + Duration::from_millis(inner.cfg.lease_ms),
            };
            (
                entry.spec.clone(),
                entry.attempts,
                entry.submitted.elapsed().as_secs_f64(),
            )
        };
        let label = spec.label();
        let begun = Instant::now();
        let outcome = if inner.cfg.shard {
            run_in_child(inner, &spec)
        } else {
            catch_unwind(AssertUnwindSafe(|| {
                // The injected worker-kill fires here — after the lease,
                // before any work — modelling a worker that dies the
                // moment it picks the job up.
                faults::maybe_kill_worker(&label);
                let flight = single_flight(inner, &spec.group_key());
                // A previous holder that died mid-warm-pass poisons the
                // flight lock; the next waiter claims it and re-runs the
                // pass (artefacts are only deposited on success, so a
                // crashed pass left nothing torn behind).
                let _guard = flight.lock().unwrap_or_else(PoisonError::into_inner);
                execute_job(&spec, Some(&inner.store))
            }))
            .map_err(|payload| panic_text(payload.as_ref()))
        };
        match outcome {
            Ok(output) => complete_job(inner, id, &label, output, attempt, queue_wait, begun),
            Err(message) => retry_or_fail(inner, id, &label, &message, attempt),
        }
    }
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn single_flight(inner: &Inner, key: &str) -> Arc<Mutex<()>> {
    Arc::clone(
        lock(&inner.flights)
            .entry(key.to_string())
            .or_insert_with(|| Arc::new(Mutex::new(()))),
    )
}

/// Runs one job in a child `vpr-serve exec-job` process, killing it at
/// the lease deadline (real preemption — a wedged simulation cannot hold
/// a worker slot past its lease).
fn run_in_child(inner: &Inner, spec: &JobSpec) -> Result<JobOutput, String> {
    let exe = std::env::current_exe().map_err(|e| format!("no current exe: {e}"))?;
    let deadline = Instant::now() + Duration::from_millis(inner.cfg.lease_ms);
    let mut child = std::process::Command::new(exe)
        .arg("exec-job")
        .arg("--spec")
        .arg(spec.to_json())
        .arg("--dir")
        .arg(inner.cfg.dir.join(STORE_SUBDIR))
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .map_err(|e| format!("spawn failed: {e}"))?;
    loop {
        match child.try_wait() {
            Ok(Some(status)) => {
                let mut out = String::new();
                if let Some(mut stdout) = child.stdout.take() {
                    let _ = stdout.read_to_string(&mut out);
                }
                if !status.success() {
                    return Err(format!("exec-job exited with {status}"));
                }
                let line = out.lines().last().ok_or("exec-job produced no output")?;
                let v = vpr_snap::manifest::parse_json(line)
                    .map_err(|e| format!("exec-job output unparseable: {e}"))?;
                return JobOutput::from_json(&v);
            }
            Ok(None) => {
                if Instant::now() >= deadline {
                    let _ = child.kill();
                    let _ = child.wait();
                    return Err("lease deadline exceeded; shard worker killed".into());
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => {
                let _ = child.kill();
                let _ = child.wait();
                return Err(format!("wait failed: {e}"));
            }
        }
    }
}

fn complete_job(
    inner: &Arc<Inner>,
    id: u64,
    label: &str,
    output: JobOutput,
    attempt: u32,
    queue_wait: f64,
    begun: Instant,
) {
    {
        let mut jobs = lock(&inner.jobs);
        let Some(entry) = jobs.get_mut(&id) else {
            return;
        };
        // First completion wins; a reclaimed-then-finished duplicate
        // computed the same bits and is simply dropped.
        if matches!(entry.state, JobState::Done { .. } | JobState::Failed { .. }) {
            return;
        }
        entry.state = JobState::Done {
            output: output.clone(),
        };
    }
    if let Err(e) = lock(&inner.journal).append(&Record::Done {
        id,
        output: output.clone(),
    }) {
        // The result is still served from memory; a restart will re-run
        // this one job. Degradation, not loss.
        eprintln!("vpr-serve: done-record append failed for job {id}: {e}");
    }
    inner.counters.completed.fetch_add(1, Ordering::Relaxed);
    let telemetry_outcome = match output.outcome {
        CheckpointOutcome::Hit(_) => {
            inner.counters.dedup_hits.fetch_add(1, Ordering::Relaxed);
            JobOutcome::CacheHit
        }
        CheckpointOutcome::Miss => JobOutcome::CacheMiss,
        CheckpointOutcome::NoStore => JobOutcome::NoStore,
    };
    let mut telemetry = lock(&inner.telemetry);
    telemetry.push(JobTelemetry {
        label: label.to_string(),
        stage: "serve",
        queue_wait_s: queue_wait,
        wall_s: begun.elapsed().as_secs_f64(),
        outcome: telemetry_outcome,
        recovered: u64::from(attempt.saturating_sub(1)),
    });
    telemetry.wall_s = inner.started.elapsed().as_secs_f64();
    let rendered = telemetry.to_json();
    drop(telemetry);
    let _ = vpr_snap::atomic_write(&inner.cfg.dir.join(TELEMETRY_FILE), rendered.as_bytes());
}

fn retry_or_fail(inner: &Arc<Inner>, id: u64, label: &str, message: &str, attempt: u32) {
    let mut jobs = lock(&inner.jobs);
    let Some(entry) = jobs.get_mut(&id) else {
        return;
    };
    if matches!(entry.state, JobState::Done { .. } | JobState::Failed { .. }) {
        return;
    }
    if attempt < inner.cfg.retry.attempts() {
        inner.counters.retries.fetch_add(1, Ordering::Relaxed);
        let delay = inner.cfg.retry.delay_ms(attempt);
        if delay == 0 {
            entry.state = JobState::Queued;
            drop(jobs);
            lock(&inner.ready).push_back(id);
            inner.ready_cv.notify_one();
        } else {
            entry.state = JobState::Backoff {
                until: Instant::now() + Duration::from_millis(delay),
            };
        }
        return;
    }
    // Budget exhausted: degrade into the structured failure the batch
    // sweep would report (NaN metrics, recovered: false) — the queue
    // moves on.
    let error = format!("job {label} failed after {attempt} attempts: {message}");
    entry.state = JobState::Failed {
        error: error.clone(),
        attempts: attempt,
    };
    drop(jobs);
    if let Err(e) = lock(&inner.journal).append(&Record::Failed {
        id,
        error,
        attempts: attempt,
    }) {
        eprintln!("vpr-serve: failed-record append failed for job {id}: {e}");
    }
    inner.counters.failed.fetch_add(1, Ordering::Relaxed);
}

fn supervisor_loop(inner: &Arc<Inner>) {
    while !inner.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(10));
        let now = Instant::now();
        let mut to_ready: Vec<u64> = Vec::new();
        let mut expired: Vec<(u64, String, u32)> = Vec::new();
        {
            let mut jobs = lock(&inner.jobs);
            for (&id, entry) in jobs.iter_mut() {
                match entry.state {
                    JobState::Backoff { until } if now >= until => {
                        entry.state = JobState::Queued;
                        to_ready.push(id);
                    }
                    JobState::Leased { deadline } => {
                        let label = entry.spec.label();
                        if now >= deadline || faults::lease_expires_early(&label) {
                            expired.push((id, label, entry.attempts));
                            // Reclaim immediately; retry_or_fail decides
                            // requeue vs degrade below, outside this lock.
                            entry.state = JobState::Queued;
                        }
                    }
                    _ => {}
                }
            }
            // retry_or_fail expects a non-terminal entry; mark reclaimed
            // leases as Backoff-pending via the shared path after the
            // scan (it re-locks).
        }
        if !to_ready.is_empty() {
            let mut ready = lock(&inner.ready);
            for id in to_ready {
                ready.push_back(id);
            }
            drop(ready);
            inner.ready_cv.notify_all();
        }
        for (id, label, attempts) in expired {
            inner
                .counters
                .lease_expiries
                .fetch_add(1, Ordering::Relaxed);
            retry_or_fail(inner, id, &label, "lease expired", attempts);
        }
    }
}
