//! `vpr-serve`: a crash-recoverable sweep service.
//!
//! The batch binaries (`table2`, `fig4`, …) regenerate the paper's
//! artefacts one process invocation at a time. This crate turns the same
//! job execution ([`vpr_bench::jobs`]) into a **long-running daemon**: N
//! clients submit sweep grids over a Unix-domain socket (line-delimited
//! JSON, parsed by the workspace's own [`vpr_snap::manifest`] reader),
//! workers execute them under leases, and a shared warm-checkpoint store
//! dedups warm passes across tenants.
//!
//! The robustness contract, built from four pieces:
//!
//! 1. **Write-ahead journal** ([`journal`]): every acknowledged job and
//!    every terminal result is fsynced to `jobs.wal` before it is
//!    visible on the wire. A crash (SIGTERM, SIGKILL, power) loses no
//!    accepted work; a restart replays the journal, re-queues unfinished
//!    jobs, and serves finished results without recomputation.
//! 2. **Worker leases** ([`server`]): each job attempt runs under a
//!    deadline; expired leases are reclaimed and retried with capped
//!    exponential backoff ([`vpr_core::par::RetryPolicy`]). An exhausted
//!    budget degrades into the structured NaN failure the batch sweep
//!    reports — a poisoned job can never wedge the queue.
//! 3. **Cross-tenant warm-pass dedup**: jobs coalesce on their
//!    (workload, seed, scheme-family) key via single-flight locks over
//!    the [`vpr_bench::checkpoints::CheckpointStore`]; a warm pass that
//!    crashes is re-run by the next waiter, and artefacts are deposited
//!    only on success (atomic writes), so nothing torn is ever cached.
//! 4. **Fault hooks**: the daemon consults
//!    [`vpr_snap::faults`] at its four service-specific points —
//!    journal append, lease expiry, client disconnect, worker kill —
//!    and the service fault tests pin that any single injected fault
//!    leaves every client's results byte-identical to a fault-free
//!    serial run.
//!
//! Protocol, journal format, and the operator playbook are documented in
//! `docs/service.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod journal;
pub mod protocol;
pub mod server;

pub use client::Client;
pub use journal::{Journal, Record, JOURNAL_FILE};
pub use protocol::{PollResult, Request};
pub use server::{ServeConfig, Server, STORE_SUBDIR, TELEMETRY_FILE};
