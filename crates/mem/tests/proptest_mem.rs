//! Property tests for the memory substrate: the cache and the LSQ must
//! uphold their contracts for arbitrary access sequences, not just the
//! hand-written unit-test patterns.

use proptest::prelude::*;
use vpr_isa::MemAccess;
use vpr_mem::{AccessKind, AccessOutcome, CacheConfig, DataCache, LoadDisposition, Lsq};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Timing sanity over random access streams: hits complete in exactly
    /// the hit latency; misses never complete before the miss penalty;
    /// in-flight fills never exceed the MSHR count; granted accesses per
    /// cycle never exceed the port count.
    #[test]
    fn cache_timing_contract(
        addrs in prop::collection::vec(0u64..(1 << 18), 1..400),
        stores in prop::collection::vec(any::<bool>(), 400),
        stride in 1u64..5,
    ) {
        let config = CacheConfig::default();
        let mut dc = DataCache::new(config);
        let mut now = 0u64;
        let mut granted_this_cycle = 0u32;
        for (i, addr) in addrs.iter().enumerate() {
            let kind = if stores[i] { AccessKind::Store } else { AccessKind::Load };
            match dc.access(now, *addr, kind) {
                AccessOutcome::Hit { ready_at } => {
                    granted_this_cycle += 1;
                    prop_assert_eq!(ready_at, now + config.hit_latency);
                }
                AccessOutcome::Miss { ready_at, merged } => {
                    granted_this_cycle += 1;
                    if merged {
                        // Joins an earlier fill: completes with it, which
                        // is strictly in the future but may be sooner than
                        // a fresh miss.
                        prop_assert!(ready_at > now);
                    } else {
                        prop_assert!(ready_at >= now + config.miss_penalty);
                    }
                }
                AccessOutcome::Retry { .. } => {}
            }
            prop_assert!(granted_this_cycle <= config.ports);
            prop_assert!(dc.inflight_fills() <= config.mshrs);
            if i % 3 == 2 {
                now += stride;
                granted_this_cycle = 0;
            }
        }
    }

    /// Repeating the same address after its fill completes always hits.
    #[test]
    fn cache_fill_then_hit(addr in 0u64..(1 << 20)) {
        let mut dc = DataCache::new(CacheConfig::default());
        let ready = match dc.access(0, addr, AccessKind::Load) {
            AccessOutcome::Miss { ready_at, .. } => ready_at,
            other => { prop_assert!(false, "cold access must miss: {other:?}"); return Ok(()); }
        };
        match dc.access(ready, addr, AccessKind::Load) {
            AccessOutcome::Hit { .. } => {}
            other => prop_assert!(false, "post-fill access must hit: {other:?}"),
        }
    }

    /// The loads-only secondary index vs. the linear-walk oracle: replay a
    /// random operation soup (inserts, load/store resolutions, commits,
    /// squashes) against a shadow model that stores every entry in one
    /// flat program-ordered list, and check that `resolve_store` — which
    /// walks only the loads index — reports exactly the victims the
    /// oracle's full linear walk over *all* entries finds.
    #[test]
    fn loads_index_matches_linear_walk_oracle(
        ops in prop::collection::vec((0u8..6, 0u64..48, 0u64..12), 10..120),
    ) {
        #[derive(Clone, Copy)]
        struct ShadowEntry {
            seq: u64,
            is_store: bool,
            access: Option<MemAccess>,
            performed: bool,
            forwarded_from: Option<u64>,
        }
        let mut lsq = Lsq::new(64);
        let mut shadow: Vec<ShadowEntry> = Vec::new();
        let mut next_seq = 0u64;
        for (kind, pick, slot) in ops {
            let access = MemAccess::word(0x4000 + slot * 8);
            match kind {
                // Insert a load or a store at the program-order tail.
                0 | 1 => {
                    if shadow.len() == 64 { continue; }
                    let is_store = kind == 1;
                    let seq = next_seq;
                    next_seq += 1;
                    if is_store { lsq.insert_store(seq) } else { lsq.insert_load(seq) }
                    shadow.push(ShadowEntry {
                        seq, is_store, access: None, performed: false, forwarded_from: None,
                    });
                }
                // Resolve a random unresolved load.
                2 => {
                    let Some(target) = shadow.iter()
                        .filter(|e| !e.is_store && !e.performed)
                        .nth(pick as usize % 8).map(|e| e.seq) else { continue };
                    let disp = lsq.resolve_load(target, access);
                    let e = shadow.iter_mut().find(|e| e.seq == target).expect("tracked");
                    e.access = Some(access);
                    e.performed = true;
                    e.forwarded_from = match disp {
                        LoadDisposition::Forward { store_seq, .. } => Some(store_seq),
                        LoadDisposition::Cache { .. } => None,
                    };
                }
                // Resolve a random unresolved store; compare victims with
                // the oracle's linear walk.
                3 => {
                    let Some(target) = shadow.iter()
                        .filter(|e| e.is_store && e.access.is_none())
                        .nth(pick as usize % 8).map(|e| e.seq) else { continue };
                    let expected: Vec<u64> = shadow.iter()
                        .filter(|l| {
                            l.seq > target
                                && !l.is_store
                                && l.performed
                                && l.access.is_some_and(|la| la.overlaps(&access))
                                && l.forwarded_from.is_none_or(|f| f <= target)
                        })
                        .map(|l| l.seq)
                        .collect();
                    let victims = lsq.resolve_store(target, access);
                    prop_assert_eq!(&victims, &expected,
                        "store {} victims diverge from the linear walk", target);
                    shadow.iter_mut().find(|e| e.seq == target).expect("tracked")
                        .access = Some(access);
                    for v in victims {
                        let l = shadow.iter_mut().find(|e| e.seq == v).expect("victim");
                        l.performed = false;
                        l.forwarded_from = None;
                    }
                }
                // Commit (remove) the oldest entry.
                4 => {
                    if shadow.is_empty() { continue; }
                    let seq = shadow.remove(0).seq;
                    lsq.remove(seq);
                }
                // Squash the youngest few entries (at least one survives:
                // `squash_younger_than` keeps its boundary entry).
                _ => {
                    if shadow.len() < 2 { continue; }
                    let keep = shadow.len().saturating_sub(1 + pick as usize % 3).max(1);
                    let boundary = shadow[keep - 1].seq;
                    shadow.truncate(keep);
                    lsq.squash_younger_than(boundary);
                }
            }
        }
    }

    /// LSQ vs. a naive oracle: replay random load/store address
    /// resolutions in arbitrary order and verify that every load's final
    /// data source matches the youngest older store with an overlapping
    /// address (program order), regardless of the resolution order —
    /// the whole point of violation-driven re-execution.
    #[test]
    fn lsq_converges_to_program_order(
        ops in prop::collection::vec((any::<bool>(), 0u64..64), 2..40),
        resolve_order in prop::collection::vec(0usize..40, 2..40),
    ) {
        let mut lsq = Lsq::new(64);
        // Insert in program order.
        for (seq, (is_store, _)) in ops.iter().enumerate() {
            if *is_store {
                lsq.insert_store(seq as u64);
            } else {
                lsq.insert_load(seq as u64);
            }
        }
        // Resolve in a scrambled order (dedup to one resolution each,
        // with re-resolution of violated loads as the pipeline would).
        let mut resolved: Vec<bool> = vec![false; ops.len()];
        let mut load_source: Vec<Option<Option<u64>>> = vec![None; ops.len()];
        let mut pending: Vec<usize> = resolve_order
            .iter()
            .map(|&i| i % ops.len())
            .collect();
        for i in 0..ops.len() {
            pending.push(i);
        }
        while let Some(idx) = pending.pop() {
            let (is_store, slot) = ops[idx];
            let access = MemAccess::word(0x1000 + slot * 8);
            if is_store {
                if resolved[idx] {
                    continue;
                }
                resolved[idx] = true;
                for victim in lsq.resolve_store(idx as u64, access) {
                    // Violated loads re-execute: queue a re-resolution.
                    load_source[victim as usize] = None;
                    pending.push(victim as usize);
                }
            } else {
                if load_source[idx].is_some() {
                    continue;
                }
                resolved[idx] = true;
                let disp = lsq.resolve_load(idx as u64, access);
                load_source[idx] = Some(match disp {
                    LoadDisposition::Forward { store_seq, .. } => Some(store_seq),
                    LoadDisposition::Cache { .. } => None,
                });
            }
        }
        // Oracle: youngest older resolved store with the same slot.
        for (idx, (is_store, slot)) in ops.iter().enumerate() {
            if *is_store || load_source[idx].is_none() {
                continue;
            }
            let expected = ops[..idx]
                .iter()
                .enumerate()
                .rev()
                .find(|(j, (s, sl))| *s && sl == slot && resolved[*j])
                .map(|(j, _)| j as u64);
            prop_assert_eq!(
                load_source[idx].unwrap(),
                expected,
                "load {} must source from the youngest older store",
                idx
            );
        }
    }
}
