//! Property tests for the memory substrate: the cache and the LSQ must
//! uphold their contracts for arbitrary access sequences, not just the
//! hand-written unit-test patterns.

use proptest::prelude::*;
use vpr_isa::MemAccess;
use vpr_mem::{AccessKind, AccessOutcome, CacheConfig, DataCache, LoadDisposition, Lsq};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Timing sanity over random access streams: hits complete in exactly
    /// the hit latency; misses never complete before the miss penalty;
    /// in-flight fills never exceed the MSHR count; granted accesses per
    /// cycle never exceed the port count.
    #[test]
    fn cache_timing_contract(
        addrs in prop::collection::vec(0u64..(1 << 18), 1..400),
        stores in prop::collection::vec(any::<bool>(), 400),
        stride in 1u64..5,
    ) {
        let config = CacheConfig::default();
        let mut dc = DataCache::new(config);
        let mut now = 0u64;
        let mut granted_this_cycle = 0u32;
        for (i, addr) in addrs.iter().enumerate() {
            let kind = if stores[i] { AccessKind::Store } else { AccessKind::Load };
            match dc.access(now, *addr, kind) {
                AccessOutcome::Hit { ready_at } => {
                    granted_this_cycle += 1;
                    prop_assert_eq!(ready_at, now + config.hit_latency);
                }
                AccessOutcome::Miss { ready_at, merged } => {
                    granted_this_cycle += 1;
                    if merged {
                        // Joins an earlier fill: completes with it, which
                        // is strictly in the future but may be sooner than
                        // a fresh miss.
                        prop_assert!(ready_at > now);
                    } else {
                        prop_assert!(ready_at >= now + config.miss_penalty);
                    }
                }
                AccessOutcome::Retry { .. } => {}
            }
            prop_assert!(granted_this_cycle <= config.ports);
            prop_assert!(dc.inflight_fills() <= config.mshrs);
            if i % 3 == 2 {
                now += stride;
                granted_this_cycle = 0;
            }
        }
    }

    /// Repeating the same address after its fill completes always hits.
    #[test]
    fn cache_fill_then_hit(addr in 0u64..(1 << 20)) {
        let mut dc = DataCache::new(CacheConfig::default());
        let ready = match dc.access(0, addr, AccessKind::Load) {
            AccessOutcome::Miss { ready_at, .. } => ready_at,
            other => { prop_assert!(false, "cold access must miss: {other:?}"); return Ok(()); }
        };
        match dc.access(ready, addr, AccessKind::Load) {
            AccessOutcome::Hit { .. } => {}
            other => prop_assert!(false, "post-fill access must hit: {other:?}"),
        }
    }

    /// LSQ vs. a naive oracle: replay random load/store address
    /// resolutions in arbitrary order and verify that every load's final
    /// data source matches the youngest older store with an overlapping
    /// address (program order), regardless of the resolution order —
    /// the whole point of violation-driven re-execution.
    #[test]
    fn lsq_converges_to_program_order(
        ops in prop::collection::vec((any::<bool>(), 0u64..64), 2..40),
        resolve_order in prop::collection::vec(0usize..40, 2..40),
    ) {
        let mut lsq = Lsq::new(64);
        // Insert in program order.
        for (seq, (is_store, _)) in ops.iter().enumerate() {
            if *is_store {
                lsq.insert_store(seq as u64);
            } else {
                lsq.insert_load(seq as u64);
            }
        }
        // Resolve in a scrambled order (dedup to one resolution each,
        // with re-resolution of violated loads as the pipeline would).
        let mut resolved: Vec<bool> = vec![false; ops.len()];
        let mut load_source: Vec<Option<Option<u64>>> = vec![None; ops.len()];
        let mut pending: Vec<usize> = resolve_order
            .iter()
            .map(|&i| i % ops.len())
            .collect();
        for i in 0..ops.len() {
            pending.push(i);
        }
        while let Some(idx) = pending.pop() {
            let (is_store, slot) = ops[idx];
            let access = MemAccess::word(0x1000 + slot * 8);
            if is_store {
                if resolved[idx] {
                    continue;
                }
                resolved[idx] = true;
                for victim in lsq.resolve_store(idx as u64, access) {
                    // Violated loads re-execute: queue a re-resolution.
                    load_source[victim as usize] = None;
                    pending.push(victim as usize);
                }
            } else {
                if load_source[idx].is_some() {
                    continue;
                }
                resolved[idx] = true;
                let disp = lsq.resolve_load(idx as u64, access);
                load_source[idx] = Some(match disp {
                    LoadDisposition::Forward { store_seq, .. } => Some(store_seq),
                    LoadDisposition::Cache { .. } => None,
                });
            }
        }
        // Oracle: youngest older resolved store with the same slot.
        for (idx, (is_store, slot)) in ops.iter().enumerate() {
            if *is_store || load_source[idx].is_none() {
                continue;
            }
            let expected = ops[..idx]
                .iter()
                .enumerate()
                .rev()
                .find(|(j, (s, sl))| *s && sl == slot && resolved[*j])
                .map(|(j, _)| j as u64);
            prop_assert_eq!(
                load_source[idx].unwrap(),
                expected,
                "load {} must source from the youngest older store",
                idx
            );
        }
    }
}
