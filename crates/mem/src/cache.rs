//! The lockup-free first-level data cache.

use crate::{Bus, MshrFile};

/// Geometry and timing of the data cache.
///
/// Defaults are the paper's configuration (§4.1): 16 KB direct-mapped,
/// 32-byte lines, 2-cycle hits, 50-cycle miss penalty, 8 MSHRs, 3 ports and
/// a 64-bit L2 bus (4 cycles per 32-byte line).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: usize,
    /// Cycles from port grant to data for a hit.
    pub hit_latency: u64,
    /// Cycles from port grant to data for a miss (excluding bus queuing).
    pub miss_penalty: u64,
    /// Number of miss status holding registers (distinct in-flight lines).
    pub mshrs: usize,
    /// Ports usable per cycle (shared by loads and committed stores).
    pub ports: u32,
    /// Bus occupancy per line transfer (fills and dirty write-backs).
    pub bus_cycles_per_line: u64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            size_bytes: 16 * 1024,
            line_bytes: 32,
            hit_latency: 2,
            miss_penalty: 50,
            mshrs: 8,
            ports: 3,
            bus_cycles_per_line: 4,
        }
    }
}

impl CacheConfig {
    /// Number of lines (`size_bytes / line_bytes`).
    #[inline]
    pub fn num_lines(&self) -> usize {
        self.size_bytes / self.line_bytes
    }

    fn validate(&self) {
        assert!(
            self.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(
            self.size_bytes.is_multiple_of(self.line_bytes) && self.num_lines() > 0,
            "cache size must be a positive multiple of the line size"
        );
        assert!(self.ports > 0, "cache needs at least one port");
        assert!(self.mshrs > 0, "cache needs at least one MSHR");
        assert!(
            self.miss_penalty >= self.bus_cycles_per_line,
            "miss penalty must cover the line transfer"
        );
    }
}

/// Whether an access reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A demand load.
    Load,
    /// A committed store draining from the store buffer.
    Store,
}

/// Result of presenting an access to the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line is resident; data is available at `ready_at`.
    Hit {
        /// Cycle at which the data is available.
        ready_at: u64,
    },
    /// The line is (now) being fetched; data is available at `ready_at`.
    /// Covers both a newly allocated fill and a merge into an in-flight one.
    Miss {
        /// Cycle at which the fill completes.
        ready_at: u64,
        /// True when this access merged into an existing fill.
        merged: bool,
    },
    /// No port or no MSHR was available; present the access again later.
    Retry {
        /// Why the access could not be accepted.
        reason: RetryReason,
    },
}

/// Why the cache asked for an access to be retried.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryReason {
    /// All ports are taken this cycle.
    NoPort,
    /// All MSHRs hold in-flight lines (lockup-free limit reached).
    NoMshr,
}

/// Occupancy and outcome counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Port-granted accesses that hit a resident line.
    pub hits: u64,
    /// Port-granted accesses that started a new line fill.
    pub misses: u64,
    /// Port-granted accesses that merged into an in-flight fill.
    pub merged_misses: u64,
    /// Accesses bounced for lack of a port.
    pub port_retries: u64,
    /// Accesses bounced for lack of an MSHR.
    pub mshr_retries: u64,
    /// Lines evicted dirty (write-back bus traffic).
    pub dirty_evictions: u64,
}

impl CacheStats {
    /// Miss ratio over granted demand accesses (merges count as misses).
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses + self.merged_misses;
        if total == 0 {
            0.0
        } else {
            (self.misses + self.merged_misses) as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
}

/// A lockup-free, direct-mapped, write-back/write-allocate data cache.
///
/// Callers present accesses with [`DataCache::access`], passing the current
/// cycle; the cache internally installs completed fills, arbitrates ports
/// (per-cycle counter) and manages MSHRs and the L2 bus. Time never flows
/// backwards: `now` must be monotonically non-decreasing across calls.
///
/// ```
/// use vpr_mem::{AccessKind, AccessOutcome, CacheConfig, DataCache};
/// let mut dc = DataCache::new(CacheConfig::default());
/// // Cold miss: 50-cycle penalty.
/// match dc.access(0, 0x1000, AccessKind::Load) {
///     AccessOutcome::Miss { ready_at, merged } => {
///         assert_eq!(ready_at, 50);
///         assert!(!merged);
///     }
///     other => panic!("expected a miss, got {other:?}"),
/// }
/// // Same line once the fill completed: a 2-cycle hit.
/// match dc.access(60, 0x1008, AccessKind::Load) {
///     AccessOutcome::Hit { ready_at } => assert_eq!(ready_at, 62),
///     other => panic!("expected a hit, got {other:?}"),
/// }
/// ```
#[derive(Debug, Clone)]
pub struct DataCache {
    config: CacheConfig,
    lines: Vec<Line>,
    mshrs: MshrFile,
    bus: Bus,
    stats: CacheStats,
    cycle: u64,
    ports_used: u32,
    /// Completed fills installed into the line array (see
    /// [`DataCache::state_token`]).
    installs: u64,
    /// MSHRs allocated for fresh misses (see [`DataCache::state_token`]).
    mshr_allocs: u64,
    line_shift: u32,
    /// `num_lines - 1` when the line count is a power of two (the stock
    /// geometry), letting [`DataCache::access`] index sets with a mask
    /// instead of a hardware-divide `%` on its hottest path; `u64::MAX`
    /// sentinel selects the modulo fallback for odd geometries.
    set_mask: u64,
}

impl DataCache {
    /// Creates an empty (all-invalid) cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see [`CacheConfig`]).
    pub fn new(config: CacheConfig) -> Self {
        config.validate();
        Self {
            lines: vec![Line::default(); config.num_lines()],
            mshrs: MshrFile::new(config.mshrs),
            bus: Bus::new(config.bus_cycles_per_line),
            stats: CacheStats::default(),
            cycle: 0,
            ports_used: 0,
            installs: 0,
            mshr_allocs: 0,
            line_shift: config.line_bytes.trailing_zeros(),
            set_mask: if config.num_lines().is_power_of_two() {
                (config.num_lines() - 1) as u64
            } else {
                u64::MAX
            },
            config,
        }
    }

    /// The configuration this cache was built with.
    #[inline]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Outcome counters.
    #[inline]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Bus occupancy counters.
    #[inline]
    pub fn bus(&self) -> &Bus {
        &self.bus
    }

    /// Number of in-flight line fills.
    #[inline]
    pub fn inflight_fills(&self) -> usize {
        self.mshrs.len()
    }

    #[inline]
    fn line_addr(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    #[inline]
    fn set_index(&self, line_addr: u64) -> usize {
        if self.set_mask != u64::MAX {
            (line_addr & self.set_mask) as usize
        } else {
            (line_addr % self.lines.len() as u64) as usize
        }
    }

    fn advance(&mut self, now: u64) {
        assert!(
            now >= self.cycle,
            "cache time went backwards: {} -> {now}",
            self.cycle
        );
        if now != self.cycle {
            self.cycle = now;
            self.ports_used = 0;
        }
        // Install lines whose fill has completed.
        for fill in self.mshrs.drain_completed(now) {
            self.installs += 1;
            let idx = self.set_index(fill.line_addr);
            let victim = &mut self.lines[idx];
            if victim.valid && victim.dirty && victim.tag != fill.line_addr {
                // Dirty eviction: write the victim back over the bus. The
                // fill data already arrived, so this only delays *future*
                // transfers, not this access.
                self.stats.dirty_evictions += 1;
                self.bus.reserve(now);
            }
            *victim = Line {
                tag: fill.line_addr,
                valid: true,
                dirty: fill.dirty,
            };
        }
    }

    /// Presents one access at cycle `now`. See [`AccessOutcome`].
    ///
    /// Ports are consumed only by granted accesses (hits and misses);
    /// a [`AccessOutcome::Retry`] consumes nothing and may be re-presented
    /// on a later cycle.
    ///
    /// # Panics
    ///
    /// Panics if `now` is smaller than the cycle of a previous call.
    pub fn access(&mut self, now: u64, addr: u64, kind: AccessKind) -> AccessOutcome {
        self.advance(now);
        if self.ports_used == self.config.ports {
            self.stats.port_retries += 1;
            return AccessOutcome::Retry {
                reason: RetryReason::NoPort,
            };
        }
        let line_addr = self.line_addr(addr);
        let idx = self.set_index(line_addr);
        let is_store = kind == AccessKind::Store;

        // Resident?
        let line = self.lines[idx];
        if line.valid && line.tag == line_addr {
            self.ports_used += 1;
            self.stats.hits += 1;
            self.lines[idx].dirty |= is_store;
            return AccessOutcome::Hit {
                ready_at: now + self.config.hit_latency,
            };
        }

        // In flight? Merge without consuming a new MSHR.
        if let Some(ready_at) = self.mshrs.merge(line_addr, is_store) {
            self.ports_used += 1;
            self.stats.merged_misses += 1;
            return AccessOutcome::Miss {
                ready_at,
                merged: true,
            };
        }

        // New miss: need an MSHR and a bus slot.
        if self.mshrs.is_full() {
            self.stats.mshr_retries += 1;
            return AccessOutcome::Retry {
                reason: RetryReason::NoMshr,
            };
        }
        // The transfer is the tail end of the miss penalty; queuing behind
        // earlier transfers delays completion past the nominal penalty.
        let transfer_earliest = now + self.config.miss_penalty - self.config.bus_cycles_per_line;
        let ready_at = self.bus.reserve(transfer_earliest);
        let ok = self.mshrs.allocate(line_addr, ready_at, is_store);
        debug_assert!(ok, "MSHR availability checked above");
        self.mshr_allocs += 1;
        self.ports_used += 1;
        self.stats.misses += 1;
        AccessOutcome::Miss {
            ready_at,
            merged: false,
        }
    }

    /// Probes whether `addr` would hit right now, without consuming a port
    /// or perturbing any state. Used by tests and by occupancy diagnostics.
    pub fn would_hit(&self, addr: u64) -> bool {
        let line_addr = self.line_addr(addr);
        let line = self.lines[self.set_index(line_addr)];
        line.valid && line.tag == line_addr
    }

    /// `(installs, MSHR allocations)` so far. Line residency and MSHR
    /// occupancy change **only** when one of these counters moves (hits
    /// only toggle dirty bits; merges only amend an in-flight fill), so
    /// an unchanged token proves every previously MSHR-bounced load
    /// would bounce identically — the retry-sweep memo's validity test.
    #[inline]
    pub fn state_token(&self) -> (u64, u64) {
        (self.installs, self.mshr_allocs)
    }

    /// True when every port of cycle `now` is already spoken for — the
    /// one condition that turns a would-be MSHR bounce into a port
    /// bounce, and therefore the other half of the memo's validity test.
    #[inline]
    pub fn ports_exhausted_at(&self, now: u64) -> bool {
        self.cycle == now && self.ports_used == self.config.ports
    }

    /// The earliest cycle at which an in-flight fill completes, if any —
    /// the next moment the resident-line set or MSHR occupancy can change
    /// without a new access. The idle-skip logic uses it as the bound for
    /// windows in which every pending retry is MSHR-blocked.
    pub fn earliest_fill(&self) -> Option<u64> {
        self.mshrs.earliest_ready()
    }

    /// The cache's half of the core's `next_activity()` governor contract
    /// (see `docs/kernel.md`): the earliest cycle at which the cache
    /// changes state *on its own* — i.e. installs a completed fill. Never
    /// later than the true next self-generated change; `None` when no
    /// fill is in flight (the cache then only reacts to new accesses).
    #[inline]
    pub fn next_activity(&self) -> Option<u64> {
        self.earliest_fill()
    }

    /// Read-only: would [`DataCache::access`] bounce this load with
    /// [`RetryReason::NoMshr`]? Valid only when no fill has completed yet
    /// (`earliest_fill() > now`, so the resident set is current) and no
    /// port has been granted this cycle — the conditions under which the
    /// idle-skip logic calls it.
    pub fn would_bounce_for_mshr(&self, addr: u64) -> bool {
        let line_addr = self.line_addr(addr);
        let line = self.lines[self.set_index(line_addr)];
        let resident = line.valid && line.tag == line_addr;
        !resident && self.mshrs.find(line_addr).is_none() && self.mshrs.is_full()
    }

    /// Functionally touches `addr`: installs (or re-marks) the line as if
    /// every timing effect had already resolved — no ports, MSHRs, bus,
    /// statistics or clock involved. This is the *functional warm-up*
    /// primitive of the sampling harness: replaying the skipped
    /// instruction stream through it approximates the residency/dirty
    /// state a detailed simulation would have reached, so a detailed
    /// interval can start from a warm cache instead of a cold one.
    pub fn warm_touch(&mut self, addr: u64, is_store: bool) {
        let line_addr = self.line_addr(addr);
        let idx = self.set_index(line_addr);
        let line = &mut self.lines[idx];
        if line.valid && line.tag == line_addr {
            line.dirty |= is_store;
        } else {
            *line = Line {
                tag: line_addr,
                valid: true,
                dirty: is_store,
            };
        }
    }

    /// Replays the `mshr_retries` a skipped idle stretch would have
    /// accumulated: one per pending MSHR-blocked retry per skipped cycle.
    /// Counterpart of the pipeline's idle-cycle fast-forwarding, which
    /// guarantees the skipped cycles' sweeps would all have bounced.
    pub fn note_skipped_mshr_retries(&mut self, n: u64) {
        self.stats.mshr_retries += n;
    }
}

impl vpr_snap::Snap for CacheConfig {
    fn save(&self, enc: &mut vpr_snap::Encoder) {
        enc.put_usize(self.size_bytes);
        enc.put_usize(self.line_bytes);
        enc.put_u64(self.hit_latency);
        enc.put_u64(self.miss_penalty);
        enc.put_usize(self.mshrs);
        enc.put_u32(self.ports);
        enc.put_u64(self.bus_cycles_per_line);
    }

    fn load(dec: &mut vpr_snap::Decoder<'_>) -> Self {
        Self {
            size_bytes: dec.take_usize(),
            line_bytes: dec.take_usize(),
            hit_latency: dec.take_u64(),
            miss_penalty: dec.take_u64(),
            mshrs: dec.take_usize(),
            ports: dec.take_u32(),
            bus_cycles_per_line: dec.take_u64(),
        }
    }
}

impl vpr_snap::Snap for CacheStats {
    fn save(&self, enc: &mut vpr_snap::Encoder) {
        enc.put_u64(self.hits);
        enc.put_u64(self.misses);
        enc.put_u64(self.merged_misses);
        enc.put_u64(self.port_retries);
        enc.put_u64(self.mshr_retries);
        enc.put_u64(self.dirty_evictions);
    }

    fn load(dec: &mut vpr_snap::Decoder<'_>) -> Self {
        Self {
            hits: dec.take_u64(),
            misses: dec.take_u64(),
            merged_misses: dec.take_u64(),
            port_retries: dec.take_u64(),
            mshr_retries: dec.take_u64(),
            dirty_evictions: dec.take_u64(),
        }
    }
}

impl vpr_snap::Snap for Line {
    fn save(&self, enc: &mut vpr_snap::Encoder) {
        enc.put_u64(self.tag);
        enc.put_bool(self.valid);
        enc.put_bool(self.dirty);
    }

    fn load(dec: &mut vpr_snap::Decoder<'_>) -> Self {
        Self {
            tag: dec.take_u64(),
            valid: dec.take_bool(),
            dirty: dec.take_bool(),
        }
    }
}

impl vpr_snap::Snap for DataCache {
    fn save(&self, enc: &mut vpr_snap::Encoder) {
        self.config.save(enc);
        self.lines.save(enc);
        self.mshrs.save(enc);
        self.bus.save(enc);
        self.stats.save(enc);
        enc.put_u64(self.cycle);
        enc.put_u32(self.ports_used);
        enc.put_u64(self.installs);
        enc.put_u64(self.mshr_allocs);
    }

    fn load(dec: &mut vpr_snap::Decoder<'_>) -> Self {
        // Rebuild the derived geometry fields from the configuration, then
        // overlay the dynamic state.
        let config = CacheConfig::load(dec);
        let mut cache = DataCache::new(config);
        cache.lines = Vec::<Line>::load(dec);
        cache.mshrs = MshrFile::load(dec);
        cache.bus = Bus::load(dec);
        cache.stats = CacheStats::load(dec);
        cache.cycle = dec.take_u64();
        cache.ports_used = dec.take_u32();
        cache.installs = dec.take_u64();
        cache.mshr_allocs = dec.take_u64();
        cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> DataCache {
        // 4 lines of 32 bytes for easy conflict construction.
        DataCache::new(CacheConfig {
            size_bytes: 128,
            line_bytes: 32,
            ..CacheConfig::default()
        })
    }

    fn ready_of(outcome: AccessOutcome) -> u64 {
        match outcome {
            AccessOutcome::Hit { ready_at } => ready_at,
            AccessOutcome::Miss { ready_at, .. } => ready_at,
            AccessOutcome::Retry { reason } => panic!("unexpected retry: {reason:?}"),
        }
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut dc = small_cache();
        let r = ready_of(dc.access(0, 0x40, AccessKind::Load));
        assert_eq!(r, 50);
        // After the fill completes the same line hits.
        let r = ready_of(dc.access(50, 0x48, AccessKind::Load));
        assert_eq!(r, 52);
        assert_eq!(dc.stats().hits, 1);
        assert_eq!(dc.stats().misses, 1);
    }

    #[test]
    fn access_to_inflight_line_merges() {
        let mut dc = small_cache();
        let first = dc.access(0, 0x40, AccessKind::Load);
        let second = dc.access(1, 0x50, AccessKind::Load);
        let (r1, r2) = (ready_of(first), ready_of(second));
        assert_eq!(r1, r2, "merged access completes with the original fill");
        assert!(matches!(second, AccessOutcome::Miss { merged: true, .. }));
        assert_eq!(dc.stats().merged_misses, 1);
        assert_eq!(dc.inflight_fills(), 1);
    }

    #[test]
    fn port_limit_enforced_per_cycle() {
        let mut dc = small_cache(); // 3 ports
        for i in 0..3 {
            // Distinct lines, all miss — each takes a port.
            let out = dc.access(0, 0x40 * (i + 1), AccessKind::Load);
            assert!(!matches!(out, AccessOutcome::Retry { .. }), "{out:?}");
        }
        let out = dc.access(0, 0x200, AccessKind::Load);
        assert_eq!(
            out,
            AccessOutcome::Retry {
                reason: RetryReason::NoPort
            }
        );
        // Next cycle the ports are free again.
        let out = dc.access(1, 0x200, AccessKind::Load);
        assert!(!matches!(out, AccessOutcome::Retry { .. }));
    }

    #[test]
    fn mshr_limit_forces_retry() {
        let mut dc = DataCache::new(CacheConfig {
            size_bytes: 16 * 1024,
            mshrs: 2,
            ports: 8,
            ..CacheConfig::default()
        });
        assert!(matches!(
            dc.access(0, 0x0000, AccessKind::Load),
            AccessOutcome::Miss { .. }
        ));
        assert!(matches!(
            dc.access(0, 0x1000, AccessKind::Load),
            AccessOutcome::Miss { .. }
        ));
        assert_eq!(
            dc.access(0, 0x2000, AccessKind::Load),
            AccessOutcome::Retry {
                reason: RetryReason::NoMshr
            }
        );
        assert_eq!(dc.stats().mshr_retries, 1);
    }

    #[test]
    fn bus_serialises_fills() {
        let mut dc = DataCache::new(CacheConfig {
            ports: 8,
            ..CacheConfig::default()
        });
        // Four concurrent misses at cycle 0: fills complete 4 bus-cycles
        // apart (50, 54, 58, 62).
        let readies: Vec<u64> = (0..4)
            .map(|i| ready_of(dc.access(0, 0x1000 * (i + 1), AccessKind::Load)))
            .collect();
        assert_eq!(readies, vec![50, 54, 58, 62]);
    }

    #[test]
    fn store_miss_installs_dirty_line_and_eviction_writes_back() {
        let mut dc = small_cache();
        // Store-miss to line 0 (set 0).
        dc.access(0, 0x00, AccessKind::Store);
        // Let the fill complete, then conflict-miss the same set.
        dc.access(60, 0x80, AccessKind::Load); // set 0 again (4-line cache)
                                               // Install it (fill at 110), evicting the dirty line -> write-back.
        dc.access(200, 0x100, AccessKind::Load);
        assert_eq!(dc.stats().dirty_evictions, 1);
    }

    #[test]
    fn store_hit_marks_dirty() {
        let mut dc = small_cache();
        dc.access(0, 0x40, AccessKind::Load);
        dc.access(60, 0x40, AccessKind::Store); // hit, marks dirty
                                                // Conflict: 0x40 and 0xC0 map to the same set in a 4-line cache.
        dc.access(100, 0xC0, AccessKind::Load);
        dc.access(200, 0x40, AccessKind::Load); // evicts the clean 0xC0? no:
                                                // installing 0xC0 at ~150 evicted dirty 0x40 -> one write-back.
        assert_eq!(dc.stats().dirty_evictions, 1);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn time_must_be_monotonic() {
        let mut dc = small_cache();
        dc.access(10, 0x40, AccessKind::Load);
        dc.access(5, 0x40, AccessKind::Load);
    }

    #[test]
    fn miss_ratio_counts_merges() {
        let mut dc = small_cache();
        dc.access(0, 0x40, AccessKind::Load); // miss
        dc.access(1, 0x48, AccessKind::Load); // merge
        dc.access(60, 0x40, AccessKind::Load); // hit
        dc.access(61, 0x44, AccessKind::Load); // hit
        let s = dc.stats();
        assert_eq!(s.miss_ratio(), 0.5);
    }

    #[test]
    fn next_activity_lower_bound() {
        // Idle cache: no self-generated activity. (Two MSHRs so the
        // bounce half of the contract is reachable below.)
        let mut dc = DataCache::new(CacheConfig {
            size_bytes: 128,
            line_bytes: 32,
            mshrs: 2,
            ..CacheConfig::default()
        });
        assert_eq!(dc.next_activity(), None);
        // In-flight fills: the earliest completion bounds the next
        // residency/MSHR change, and nothing changes before it — an
        // MSHR-bounced probe keeps bouncing until exactly that cycle.
        let t1 = match dc.access(0, 0x40, AccessKind::Load) {
            AccessOutcome::Miss { ready_at, .. } => ready_at,
            other => panic!("expected a miss, got {other:?}"),
        };
        let t2 = match dc.access(3, 0x1040, AccessKind::Load) {
            AccessOutcome::Miss { ready_at, .. } => ready_at,
            other => panic!("expected a miss, got {other:?}"),
        };
        assert_eq!(dc.next_activity(), Some(t1.min(t2)));
        assert!(dc.would_bounce_for_mshr(0x2040), "both MSHRs busy");
        assert!(!dc.would_bounce_for_mshr(0x40), "in-flight line merges");
        // Once the first fill lands, the bound advances to the second.
        dc.access(t1, 0x40, AccessKind::Load);
        assert_eq!(dc.next_activity(), Some(t2));
    }
}
