//! The L1↔L2 transfer bus.

/// A single-transaction bus between the L1 data cache and the (infinite) L2.
///
/// The paper assumes a 64-bit data bus, so moving one 32-byte line occupies
/// the bus for four cycles. The bus serialises line fills and dirty-line
/// write-backs: a second miss can overlap its *access* latency with an
/// earlier fill but its line transfer must queue.
///
/// ```
/// use vpr_mem::Bus;
/// let mut bus = Bus::new(4);
/// // Two back-to-back transfers requested at cycle 10: the second queues.
/// assert_eq!(bus.reserve(10), 14);
/// assert_eq!(bus.reserve(10), 18);
/// ```
#[derive(Debug, Clone)]
pub struct Bus {
    cycles_per_line: u64,
    free_at: u64,
    transfers: u64,
    busy_cycles: u64,
}

impl Bus {
    /// Creates a bus that needs `cycles_per_line` cycles per line transfer.
    ///
    /// # Panics
    ///
    /// Panics if `cycles_per_line` is zero.
    pub fn new(cycles_per_line: u64) -> Self {
        assert!(
            cycles_per_line > 0,
            "bus transfer must take at least 1 cycle"
        );
        Self {
            cycles_per_line,
            free_at: 0,
            transfers: 0,
            busy_cycles: 0,
        }
    }

    /// Reserves the bus for one line transfer wanted at `earliest`; returns
    /// the cycle at which the transfer completes.
    pub fn reserve(&mut self, earliest: u64) -> u64 {
        let start = self.free_at.max(earliest);
        self.free_at = start + self.cycles_per_line;
        self.transfers += 1;
        self.busy_cycles += self.cycles_per_line;
        self.free_at
    }

    /// First cycle at which the bus is idle.
    #[inline]
    pub fn free_at(&self) -> u64 {
        self.free_at
    }

    /// Total line transfers performed.
    #[inline]
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Total cycles the bus has been occupied.
    #[inline]
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }
}

impl vpr_snap::Snap for Bus {
    fn save(&self, enc: &mut vpr_snap::Encoder) {
        enc.put_u64(self.cycles_per_line);
        enc.put_u64(self.free_at);
        enc.put_u64(self.transfers);
        enc.put_u64(self.busy_cycles);
    }

    fn load(dec: &mut vpr_snap::Decoder<'_>) -> Self {
        Self {
            cycles_per_line: dec.take_u64(),
            free_at: dec.take_u64(),
            transfers: dec.take_u64(),
            busy_cycles: dec.take_u64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialises_transfers() {
        let mut bus = Bus::new(4);
        assert_eq!(bus.reserve(0), 4);
        assert_eq!(bus.reserve(0), 8);
        assert_eq!(bus.reserve(100), 104);
        assert_eq!(bus.transfers(), 3);
        assert_eq!(bus.busy_cycles(), 12);
    }

    #[test]
    fn idle_gap_is_not_charged() {
        let mut bus = Bus::new(4);
        bus.reserve(0);
        // Requested long after the bus went idle: starts immediately.
        assert_eq!(bus.reserve(50), 54);
    }

    #[test]
    #[should_panic(expected = "at least 1 cycle")]
    fn zero_cycle_bus_rejected() {
        let _ = Bus::new(0);
    }
}
