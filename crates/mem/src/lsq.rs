//! PA-8000-style memory disambiguation.
//!
//! The paper's simulator adopts "the memory disambiguation scheme
//! implemented in the PA-8000" (§4.1): an address-reorder-buffer in which
//! loads are allowed to issue even when older stores have not yet computed
//! their addresses. When a store address resolves and overlaps a younger
//! load that already performed, the load is *squashed and re-executed*;
//! when an older store with a known overlapping address holds the data, the
//! load forwards from it instead of accessing the cache.
//!
//! The [`Lsq`] tracks loads and stores by the core's global sequence
//! numbers, which encode program order.
//!
//! ### Age-map layout (audit note)
//!
//! The queue is an age map: every operation beside disambiguation walks it
//! relative to program order. It is stored as a `VecDeque` of
//! `(seq, entry)` pairs kept sorted by sequence number, not a search tree:
//! dispatch appends at the tail (sequence numbers arrive in program
//! order), commit removes at or near the head, squash pops the tail, and
//! the disambiguation scans ([`Lsq::resolve_load`] walking older stores
//! youngest→oldest, [`Lsq::resolve_store`] walking younger loads
//! oldest→youngest) are contiguous slice traversals from a binary-searched
//! pivot. Those scans are inherently O(older/younger entries) — that *is*
//! the associative address-reorder-buffer search the PA-8000 performs in
//! hardware — so the win over a `BTreeMap` is constant-factor (no pointer
//! chasing, no per-node allocation), which matters because `resolve_load`
//! sits on the hot path of every load.

use std::collections::VecDeque;
use vpr_isa::MemAccess;

/// What an address-resolved load should do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadDisposition {
    /// An older store with a resolved, overlapping address supplies the
    /// data; no cache access is needed.
    Forward {
        /// Sequence number of the forwarding store.
        store_seq: u64,
        /// True when an unresolved older store sits between the load and
        /// the forwarding store — the forward may later prove wrong.
        speculative: bool,
    },
    /// No forwarding store: access the data cache.
    Cache {
        /// True when at least one older store has an unresolved address,
        /// i.e. the load bypasses it speculatively (PA-8000 behaviour).
        speculative: bool,
    },
}

/// Disambiguation outcome counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LsqStats {
    /// Loads that forwarded from an older store.
    pub forwards: u64,
    /// Loads that issued past at least one unresolved older store.
    pub speculative_loads: u64,
    /// Load re-executions caused by ordering violations.
    pub violations: u64,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    is_store: bool,
    access: Option<MemAccess>,
    /// Load: has performed (result obtained, possibly speculatively).
    /// Store: unused.
    performed: bool,
    /// Load: sequence of the store it forwarded from, if any.
    forwarded_from: Option<u64>,
}

/// The stores-only secondary index record: `(seq, resolved address)`
/// packed into 24 bytes by folding the address's presence flag into the
/// size field ([`Lsq::resolve_load`] walks many of these per load, so
/// record density is walk bandwidth).
#[derive(Debug, Clone, Copy)]
struct StoreRec {
    seq: u64,
    /// Resolved effective address (valid only when `size != 0`).
    addr: u64,
    /// Access size in bytes; 0 while the address is unresolved.
    size: u8,
}

// Layout-regression guard: the store walk streams these.
const _: () = assert!(
    std::mem::size_of::<StoreRec>() <= 24,
    "StoreRec must stay within 24 bytes"
);

impl StoreRec {
    fn unresolved(seq: u64) -> Self {
        Self {
            seq,
            addr: 0,
            size: 0,
        }
    }

    #[inline]
    fn access(&self) -> Option<MemAccess> {
        (self.size != 0).then_some(MemAccess {
            addr: self.addr,
            size: self.size,
        })
    }

    #[inline]
    fn set_access(&mut self, access: MemAccess) {
        debug_assert!(access.size != 0, "a real access has nonzero size");
        self.addr = access.addr;
        self.size = access.size;
    }
}

/// The loads-only secondary index record: the fields
/// [`Lsq::resolve_store`]'s younger-load scan needs, duplicated (and kept
/// in sync by every load-state transition) so the walk never looks back
/// into the age map — the mirror of the stores-only index the load path
/// uses. Packed into 32 bytes the same way as [`StoreRec`], with
/// [`NO_FORWARD`] folding away the forwarding field's presence flag.
#[derive(Debug, Clone, Copy)]
struct LoadRec {
    seq: u64,
    /// Resolved effective address (valid only when `size != 0`).
    addr: u64,
    /// Sequence of the store this load forwarded from ([`NO_FORWARD`]
    /// when it did not forward).
    forwarded_from: u64,
    /// Access size in bytes; 0 while the address is unresolved.
    size: u8,
    /// Has performed (result obtained, possibly speculatively).
    performed: bool,
}

/// Packed "did not forward" sentinel in [`LoadRec`] (sequence numbers
/// count up from zero and never reach it).
const NO_FORWARD: u64 = u64::MAX;

// Layout-regression guard: two load records per cache line.
const _: () = assert!(
    std::mem::size_of::<LoadRec>() <= 32,
    "LoadRec must stay within 32 bytes (two records per cache line)"
);

impl LoadRec {
    fn unresolved(seq: u64) -> Self {
        Self {
            seq,
            addr: 0,
            forwarded_from: NO_FORWARD,
            size: 0,
            performed: false,
        }
    }

    #[inline]
    fn access(&self) -> Option<MemAccess> {
        (self.size != 0).then_some(MemAccess {
            addr: self.addr,
            size: self.size,
        })
    }
}

/// The load/store queue: program-ordered memory operations in flight.
///
/// Entries are inserted at dispatch (program order), updated when effective
/// addresses resolve, and removed at commit or squash. The queue has a
/// finite capacity; dispatch must stall when [`Lsq::is_full`].
///
/// ```
/// use vpr_isa::MemAccess;
/// use vpr_mem::{LoadDisposition, Lsq};
///
/// let mut lsq = Lsq::new(8);
/// lsq.insert_store(1);
/// lsq.insert_load(2);
/// // The load resolves first: it must speculatively bypass store #1.
/// let d = lsq.resolve_load(2, MemAccess::word(0x100));
/// assert_eq!(d, LoadDisposition::Cache { speculative: true });
/// // The store turns out to overlap: the load is flagged for re-execution.
/// let victims = lsq.resolve_store(1, MemAccess::word(0x100));
/// assert_eq!(victims, vec![2]);
/// ```
#[derive(Debug, Clone)]
pub struct Lsq {
    /// `(seq, entry)` sorted ascending by `seq` (program order).
    entries: VecDeque<(u64, Entry)>,
    /// Stores only, sorted ascending by `seq` — the secondary index
    /// [`Lsq::resolve_load`] walks, so a load's older-store scan skips
    /// every load entry outright. The address is duplicated here (kept in
    /// sync by [`Lsq::resolve_store`]) so the walk never has to look back
    /// into the age map.
    stores: VecDeque<StoreRec>,
    /// Loads only, sorted ascending by `seq` — the mirror index
    /// [`Lsq::resolve_store`] walks for violation victims, so a store's
    /// younger-load scan skips every store entry outright.
    loads: VecDeque<LoadRec>,
    capacity: usize,
    stats: LsqStats,
}

impl Lsq {
    /// Creates a queue holding at most `capacity` memory operations.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LSQ needs at least one entry");
        Self {
            entries: VecDeque::with_capacity(capacity),
            stores: VecDeque::with_capacity(capacity),
            loads: VecDeque::with_capacity(capacity),
            capacity,
            stats: LsqStats::default(),
        }
    }

    /// Index of `seq` in the stores index, if it is a tracked store.
    #[inline]
    fn store_position(&self, seq: u64) -> Option<usize> {
        self.stores.binary_search_by_key(&seq, |r| r.seq).ok()
    }

    /// Index of `seq` in the loads index, if it is a tracked load.
    #[inline]
    fn load_position(&self, seq: u64) -> Option<usize> {
        self.loads.binary_search_by_key(&seq, |r| r.seq).ok()
    }

    /// Index of `seq` in the age map, if tracked.
    #[inline]
    fn position(&self, seq: u64) -> Option<usize> {
        self.entries.binary_search_by_key(&seq, |&(s, _)| s).ok()
    }

    /// Current number of tracked memory operations.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the queue tracks nothing.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when dispatch must stall.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    /// Outcome counters.
    #[inline]
    pub fn stats(&self) -> &LsqStats {
        &self.stats
    }

    /// Registers a load at dispatch.
    ///
    /// # Panics
    ///
    /// Panics if the queue is full or `seq` is already present.
    pub fn insert_load(&mut self, seq: u64) {
        self.insert(seq, false)
    }

    /// Registers a store at dispatch.
    ///
    /// # Panics
    ///
    /// Panics if the queue is full or `seq` is already present.
    pub fn insert_store(&mut self, seq: u64) {
        self.insert(seq, true)
    }

    fn insert(&mut self, seq: u64, is_store: bool) {
        assert!(!self.is_full(), "LSQ overflow: dispatch must stall first");
        let entry = Entry {
            is_store,
            access: None,
            performed: false,
            forwarded_from: None,
        };
        if is_store {
            let rec = StoreRec::unresolved(seq);
            if self.stores.back().is_none_or(|r| r.seq < seq) {
                self.stores.push_back(rec);
            } else {
                match self.stores.binary_search_by_key(&seq, |r| r.seq) {
                    Ok(_) => panic!("sequence {seq} inserted twice"),
                    Err(pos) => self.stores.insert(pos, rec),
                }
            }
        } else {
            let rec = LoadRec::unresolved(seq);
            if self.loads.back().is_none_or(|r| r.seq < seq) {
                self.loads.push_back(rec);
            } else {
                match self.loads.binary_search_by_key(&seq, |r| r.seq) {
                    Ok(_) => panic!("sequence {seq} inserted twice"),
                    Err(pos) => self.loads.insert(pos, rec),
                }
            }
        }
        // Dispatch order is program order, so this is almost always a
        // plain append; the binary search keeps arbitrary orders correct.
        if self.entries.back().is_none_or(|&(s, _)| s < seq) {
            self.entries.push_back((seq, entry));
            return;
        }
        match self.entries.binary_search_by_key(&seq, |&(s, _)| s) {
            Ok(_) => panic!("sequence {seq} inserted twice"),
            Err(pos) => self.entries.insert(pos, (seq, entry)),
        }
    }

    /// Resolves a load's effective address and decides how it obtains its
    /// data. Marks the load as performed.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is not a tracked load.
    pub fn resolve_load(&mut self, seq: u64, access: MemAccess) -> LoadDisposition {
        let idx = self.position(seq).expect("unknown load");
        {
            let (_, e) = &mut self.entries[idx];
            assert!(!e.is_store, "sequence {seq} is a store");
            e.access = Some(access);
            e.performed = true;
            e.forwarded_from = None;
        }
        {
            let lpos = self.load_position(seq).expect("load is indexed");
            self.loads[lpos] = LoadRec {
                seq,
                addr: access.addr,
                forwarded_from: NO_FORWARD,
                size: access.size,
                performed: true,
            };
        }
        // Walk older stores from youngest to oldest — on the stores-only
        // index, so intervening loads cost nothing.
        let mut speculative = false;
        let mut forward: Option<u64> = None;
        let older = self.stores.partition_point(|r| r.seq < seq);
        for rec in self.stores.range(..older).rev() {
            match rec.access() {
                None => speculative = true,
                Some(sa) if sa.overlaps(&access) => {
                    forward = Some(rec.seq);
                    break;
                }
                Some(_) => {}
            }
        }
        if speculative {
            self.stats.speculative_loads += 1;
        }
        match forward {
            Some(store_seq) => {
                self.stats.forwards += 1;
                self.entries[idx].1.forwarded_from = Some(store_seq);
                let lpos = self.load_position(seq).expect("load is indexed");
                self.loads[lpos].forwarded_from = store_seq;
                LoadDisposition::Forward {
                    store_seq,
                    speculative,
                }
            }
            None => LoadDisposition::Cache { speculative },
        }
    }

    /// Resolves a store's effective address. Returns the sequence numbers
    /// of younger loads that already performed with an overlapping address
    /// and did **not** forward from a store younger than this one: those
    /// loads consumed stale data and must re-execute (they are marked
    /// not-performed here; the core re-runs them and calls
    /// [`Lsq::resolve_load`] again).
    ///
    /// # Panics
    ///
    /// Panics if `seq` is not a tracked store.
    pub fn resolve_store(&mut self, seq: u64, access: MemAccess) -> Vec<u64> {
        let idx = self.position(seq).expect("unknown store");
        {
            let (_, e) = &mut self.entries[idx];
            assert!(e.is_store, "sequence {seq} is a load");
            e.access = Some(access);
        }
        let spos = self.store_position(seq).expect("store is indexed");
        self.stores[spos].set_access(access);
        // Walk younger loads from oldest to youngest — on the loads-only
        // index, so intervening stores cost nothing (mirror of the
        // stores-only walk in `resolve_load`).
        let mut victims = Vec::new();
        let younger = self.loads.partition_point(|r| r.seq < seq);
        for l in self.loads.range(younger..) {
            if !l.performed {
                continue;
            }
            let Some(la) = l.access() else { continue };
            if !la.overlaps(&access) {
                continue;
            }
            // A forward from a store younger than us is still correct.
            if l.forwarded_from != NO_FORWARD && l.forwarded_from > seq {
                continue;
            }
            victims.push(l.seq);
        }
        for &v in &victims {
            let vi = self.position(v).expect("victim exists");
            let (_, e) = &mut self.entries[vi];
            e.performed = false;
            e.forwarded_from = None;
            let li = self.load_position(v).expect("victim is indexed");
            let l = &mut self.loads[li];
            l.performed = false;
            l.forwarded_from = NO_FORWARD;
            self.stats.violations += 1;
        }
        victims
    }

    /// Marks a performed load as not performed (e.g. the virtual-physical
    /// write-back scheme squashed it for lack of a free register). Its next
    /// execution will call [`Lsq::resolve_load`] again.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is not a tracked load.
    pub fn mark_unperformed(&mut self, seq: u64) {
        let idx = self.position(seq).expect("unknown load");
        let (_, e) = &mut self.entries[idx];
        assert!(!e.is_store, "sequence {seq} is a store");
        e.performed = false;
        e.forwarded_from = None;
        let li = self.load_position(seq).expect("load is indexed");
        let l = &mut self.loads[li];
        l.performed = false;
        l.forwarded_from = NO_FORWARD;
    }

    /// Removes an operation at commit (or at squash during recovery).
    /// Unknown sequence numbers are ignored so recovery can blindly sweep.
    /// Commit removes at (or near) the head, so the shift is O(1) in the
    /// common case.
    pub fn remove(&mut self, seq: u64) {
        if let Some(idx) = self.position(seq) {
            if self.entries[idx].1.is_store {
                let spos = self.store_position(seq).expect("store is indexed");
                self.stores.remove(spos);
            } else {
                let lpos = self.load_position(seq).expect("load is indexed");
                self.loads.remove(lpos);
            }
            self.entries.remove(idx);
        }
    }

    /// Removes every operation younger than `seq` (exclusive), for branch
    /// misprediction / exception recovery.
    pub fn squash_younger_than(&mut self, seq: u64) {
        while self.entries.back().is_some_and(|&(s, _)| s > seq) {
            self.entries.pop_back();
        }
        while self.stores.back().is_some_and(|r| r.seq > seq) {
            self.stores.pop_back();
        }
        while self.loads.back().is_some_and(|r| r.seq > seq) {
            self.loads.pop_back();
        }
    }

    /// The resolved address of a tracked operation, if known.
    pub fn address_of(&self, seq: u64) -> Option<MemAccess> {
        self.position(seq)
            .and_then(|idx| self.entries[idx].1.access)
    }
}

impl vpr_snap::Snap for LsqStats {
    fn save(&self, enc: &mut vpr_snap::Encoder) {
        enc.put_u64(self.forwards);
        enc.put_u64(self.speculative_loads);
        enc.put_u64(self.violations);
    }

    fn load(dec: &mut vpr_snap::Decoder<'_>) -> Self {
        Self {
            forwards: dec.take_u64(),
            speculative_loads: dec.take_u64(),
            violations: dec.take_u64(),
        }
    }
}

impl vpr_snap::Snap for Entry {
    fn save(&self, enc: &mut vpr_snap::Encoder) {
        enc.put_bool(self.is_store);
        self.access.save(enc);
        enc.put_bool(self.performed);
        self.forwarded_from.save(enc);
    }

    fn load(dec: &mut vpr_snap::Decoder<'_>) -> Self {
        Self {
            is_store: dec.take_bool(),
            access: Option::<MemAccess>::load(dec),
            performed: dec.take_bool(),
            forwarded_from: Option::<u64>::load(dec),
        }
    }
}

impl vpr_snap::Snap for Lsq {
    fn save(&self, enc: &mut vpr_snap::Encoder) {
        // The age map is authoritative; both secondary indexes are
        // derivable, so only the map travels.
        self.entries.save(enc);
        enc.put_usize(self.capacity);
        self.stats.save(enc);
    }

    fn load(dec: &mut vpr_snap::Decoder<'_>) -> Self {
        let entries = VecDeque::<(u64, Entry)>::load(dec);
        let mut lsq = Lsq::new(dec.take_usize());
        lsq.stats = LsqStats::load(dec);
        for &(seq, e) in &entries {
            if e.is_store {
                let mut rec = StoreRec::unresolved(seq);
                if let Some(a) = e.access {
                    rec.set_access(a);
                }
                lsq.stores.push_back(rec);
            } else {
                lsq.loads.push_back(LoadRec {
                    seq,
                    addr: e.access.map_or(0, |a| a.addr),
                    forwarded_from: e.forwarded_from.unwrap_or(NO_FORWARD),
                    size: e.access.map_or(0, |a| a.size),
                    performed: e.performed,
                });
            }
        }
        lsq.entries = entries;
        lsq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_with_no_older_stores_is_nonspeculative() {
        let mut lsq = Lsq::new(8);
        lsq.insert_load(5);
        let d = lsq.resolve_load(5, MemAccess::word(0x100));
        assert_eq!(d, LoadDisposition::Cache { speculative: false });
        assert_eq!(lsq.stats().speculative_loads, 0);
    }

    #[test]
    fn forward_from_resolved_overlapping_store() {
        let mut lsq = Lsq::new(8);
        lsq.insert_store(1);
        lsq.insert_load(2);
        lsq.resolve_store(1, MemAccess::word(0x100));
        let d = lsq.resolve_load(2, MemAccess::word(0x100));
        assert_eq!(
            d,
            LoadDisposition::Forward {
                store_seq: 1,
                speculative: false
            }
        );
        assert_eq!(lsq.stats().forwards, 1);
    }

    #[test]
    fn nearest_store_wins_forwarding() {
        let mut lsq = Lsq::new(8);
        lsq.insert_store(1);
        lsq.insert_store(2);
        lsq.insert_load(3);
        lsq.resolve_store(1, MemAccess::word(0x100));
        lsq.resolve_store(2, MemAccess::word(0x100));
        let d = lsq.resolve_load(3, MemAccess::word(0x100));
        assert_eq!(
            d,
            LoadDisposition::Forward {
                store_seq: 2,
                speculative: false
            }
        );
    }

    #[test]
    fn violation_detected_when_store_resolves_late() {
        let mut lsq = Lsq::new(8);
        lsq.insert_store(1);
        lsq.insert_load(2);
        let d = lsq.resolve_load(2, MemAccess::word(0x100));
        assert_eq!(d, LoadDisposition::Cache { speculative: true });
        let victims = lsq.resolve_store(1, MemAccess::word(0x100));
        assert_eq!(victims, vec![2]);
        assert_eq!(lsq.stats().violations, 1);
        // Re-execution resolves again; the store address is now known.
        let d = lsq.resolve_load(2, MemAccess::word(0x100));
        assert_eq!(
            d,
            LoadDisposition::Forward {
                store_seq: 1,
                speculative: false
            }
        );
    }

    #[test]
    fn disjoint_store_causes_no_violation() {
        let mut lsq = Lsq::new(8);
        lsq.insert_store(1);
        lsq.insert_load(2);
        lsq.resolve_load(2, MemAccess::word(0x100));
        let victims = lsq.resolve_store(1, MemAccess::word(0x200));
        assert!(victims.is_empty());
    }

    #[test]
    fn forward_from_younger_store_survives_older_store_resolution() {
        let mut lsq = Lsq::new(8);
        lsq.insert_store(1); // unresolved
        lsq.insert_store(2);
        lsq.insert_load(3);
        lsq.resolve_store(2, MemAccess::word(0x100));
        let d = lsq.resolve_load(3, MemAccess::word(0x100));
        // Store 1 is unresolved but *older* than the forwarding store, so
        // it cannot invalidate the forward: not speculative.
        assert_eq!(
            d,
            LoadDisposition::Forward {
                store_seq: 2,
                speculative: false
            }
        );
        // Store 1 resolves to the same address, but store 2 already
        // supplied the architecturally correct (younger) value.
        let victims = lsq.resolve_store(1, MemAccess::word(0x100));
        assert!(victims.is_empty());
    }

    #[test]
    fn unperformed_loads_are_not_victims() {
        let mut lsq = Lsq::new(8);
        lsq.insert_store(1);
        lsq.insert_load(2);
        let victims = lsq.resolve_store(1, MemAccess::word(0x100));
        assert!(victims.is_empty(), "load has not performed yet");
    }

    #[test]
    fn squash_younger_drops_wrong_path_entries() {
        let mut lsq = Lsq::new(8);
        lsq.insert_store(1);
        lsq.insert_load(2);
        lsq.insert_load(3);
        lsq.squash_younger_than(1);
        assert_eq!(lsq.len(), 1);
        assert!(lsq.address_of(1).is_none());
    }

    #[test]
    fn commit_removes_entries() {
        let mut lsq = Lsq::new(2);
        lsq.insert_load(1);
        lsq.insert_store(2);
        assert!(lsq.is_full());
        lsq.remove(1);
        lsq.remove(2);
        assert!(lsq.is_empty());
        lsq.remove(99); // unknown: ignored
    }

    #[test]
    #[should_panic(expected = "LSQ overflow")]
    fn overflow_panics() {
        let mut lsq = Lsq::new(1);
        lsq.insert_load(1);
        lsq.insert_load(2);
    }

    #[test]
    fn stores_index_survives_commit_and_squash() {
        let mut lsq = Lsq::new(16);
        lsq.insert_store(1);
        lsq.insert_load(2);
        lsq.insert_store(3);
        lsq.insert_load(4);
        lsq.insert_store(5);
        lsq.resolve_store(3, MemAccess::word(0x100));
        // Commit the oldest store: the index must drop it too, so the
        // load's walk sees only store 3 (resolved) and skips the loads.
        lsq.remove(1);
        let d = lsq.resolve_load(4, MemAccess::word(0x100));
        assert_eq!(
            d,
            LoadDisposition::Forward {
                store_seq: 3,
                speculative: false
            }
        );
        // Squash the youngest store; a re-resolved load must not see it.
        lsq.squash_younger_than(4);
        lsq.resolve_store(3, MemAccess::word(0x200));
        let d = lsq.resolve_load(4, MemAccess::word(0x100));
        assert_eq!(d, LoadDisposition::Cache { speculative: false });
    }

    #[test]
    fn loads_between_stores_do_not_hide_forwarding() {
        let mut lsq = Lsq::new(16);
        lsq.insert_store(0);
        for seq in 1..8 {
            lsq.insert_load(seq);
        }
        lsq.resolve_store(0, MemAccess::word(0x40));
        let d = lsq.resolve_load(7, MemAccess::word(0x40));
        assert_eq!(
            d,
            LoadDisposition::Forward {
                store_seq: 0,
                speculative: false
            }
        );
    }

    #[test]
    fn mark_unperformed_clears_forwarding() {
        let mut lsq = Lsq::new(8);
        lsq.insert_store(1);
        lsq.insert_load(2);
        lsq.resolve_store(1, MemAccess::word(0x100));
        lsq.resolve_load(2, MemAccess::word(0x100));
        lsq.mark_unperformed(2);
        // A later, disjoint store resolution must not see it as performed.
        lsq.insert_store(0);
        let victims = lsq.resolve_store(0, MemAccess::word(0x100));
        assert!(victims.is_empty());
    }
}
