//! # vpr-mem — memory-hierarchy substrate
//!
//! Everything below the core's load/store ports, built from scratch for the
//! HPCA-4 virtual-physical register reproduction:
//!
//! * [`DataCache`] — a lockup-free (Kroft-style) first-level data cache:
//!   direct-mapped, write-back/write-allocate, a configurable number of
//!   ports, miss status holding registers ([`Mshr`]) that merge accesses to
//!   in-flight lines, and an L1↔L2 [`Bus`] whose occupancy limits fill
//!   throughput. Paper configuration: 16 KB, 32-byte lines, 2-cycle hits,
//!   50-cycle miss penalty, 8 outstanding misses, 3 ports, 4 bus cycles per
//!   line.
//! * [`StoreBuffer`] — committed stores drain to the cache in order through
//!   a small FIFO so that commit never waits for the memory system unless
//!   the buffer fills up.
//! * [`Lsq`] — PA-8000-style memory disambiguation: loads may issue past
//!   older stores with unresolved addresses; when a store address resolves
//!   and overlaps a younger already-issued load, the load is flagged for
//!   squash and re-execution. Store→load forwarding is detected here.
//!
//! The crate is agnostic of the out-of-order core: callers drive it with a
//! monotonically increasing cycle number and instruction sequence numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bus;
mod cache;
mod lsq;
mod mshr;
mod store_buffer;

pub use bus::Bus;
pub use cache::{AccessKind, AccessOutcome, CacheConfig, CacheStats, DataCache, RetryReason};
pub use lsq::{LoadDisposition, Lsq, LsqStats};
pub use mshr::{Mshr, MshrFile};
pub use store_buffer::{PendingStore, StoreBuffer};
