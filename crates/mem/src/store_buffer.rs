//! The post-commit store buffer.

use crate::{AccessKind, AccessOutcome, DataCache};
use std::collections::VecDeque;
use vpr_isa::MemAccess;

/// A store that has committed but not yet been written to the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingStore {
    /// The store's global sequence number (diagnostics only).
    pub seq: u64,
    /// The access to perform.
    pub access: MemAccess,
}

// Layout-regression guard: the drain tick streams these.
const _: () = assert!(
    std::mem::size_of::<PendingStore>() <= 24,
    "PendingStore must stay within 24 bytes"
);

/// An in-order FIFO of committed stores draining to the data cache.
///
/// Stores leave the reorder buffer at commit and are written to the cache
/// as ports and miss status holding registers allow (see
/// [`StoreBuffer::tick`]). Commit only stalls when the buffer is full.
///
/// Loads must also check the buffer for pending data
/// ([`StoreBuffer::forwards`]) because a drained-but-unwritten store is no
/// longer visible in the LSQ.
#[derive(Debug, Clone)]
pub struct StoreBuffer {
    fifo: VecDeque<PendingStore>,
    capacity: usize,
    drained: u64,
    full_stalls: u64,
}

impl StoreBuffer {
    /// Creates a buffer with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "store buffer needs at least one entry");
        Self {
            fifo: VecDeque::with_capacity(capacity),
            capacity,
            drained: 0,
            full_stalls: 0,
        }
    }

    /// Number of buffered stores.
    #[inline]
    pub fn len(&self) -> usize {
        self.fifo.len()
    }

    /// True when no store is buffered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.fifo.is_empty()
    }

    /// True when commit must stall before retiring another store.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.fifo.len() == self.capacity
    }

    /// Total stores fully written to the cache.
    #[inline]
    pub fn drained(&self) -> u64 {
        self.drained
    }

    /// How many times [`StoreBuffer::push`] was refused.
    #[inline]
    pub fn full_stalls(&self) -> u64 {
        self.full_stalls
    }

    /// Enqueues a committed store. Returns `false` (and counts a stall)
    /// when the buffer is full; the caller must retry next cycle.
    pub fn push(&mut self, store: PendingStore) -> bool {
        if self.is_full() {
            self.full_stalls += 1;
            return false;
        }
        self.fifo.push_back(store);
        true
    }

    /// True if any buffered store overlaps `access` — the data is newer
    /// than memory and a load must take it from here (modelled as a
    /// forward by the caller).
    pub fn forwards(&self, access: &MemAccess) -> bool {
        self.fifo.iter().any(|s| s.access.overlaps(access))
    }

    /// The buffer's half of the core's `next_activity()` governor
    /// contract (see `docs/kernel.md`): the earliest cycle at or after
    /// `now` at which [`StoreBuffer::tick`] could *drain* the head store,
    /// assuming no other cache traffic intervenes. `None` when the buffer
    /// is empty; `now` when the head would be granted an access right now
    /// (hit, merge, or fresh MSHR); the cache's next fill completion when
    /// the head is MSHR-bounced (only an install can change its outcome).
    ///
    /// In the MSHR-bounced case every cycle before the returned bound
    /// performs exactly one bounced probe — one `mshr_retries` increment
    /// and nothing else — which is what lets the governor skip such
    /// windows and replay the counter in closed form
    /// ([`DataCache::note_skipped_mshr_retries`]).
    pub fn next_activity(&self, now: u64, cache: &DataCache) -> Option<u64> {
        let head = self.fifo.front()?;
        if cache.earliest_fill().is_some_and(|t| t <= now) {
            // A fill is due: residency/MSHR occupancy change this cycle,
            // so the head's outcome must be decided by a real probe.
            return Some(now);
        }
        if cache.would_bounce_for_mshr(head.access.addr) {
            // Bounces until a fill completes. MSHRs being full implies at
            // least one in-flight fill, so the bound exists.
            return cache.earliest_fill();
        }
        Some(now)
    }

    /// Advances the drain engine by one cycle: tries to write the head
    /// store to the cache. Call once per simulated cycle.
    ///
    /// A store that hits drains immediately (the write is buffered inside
    /// the cache, which marked the line dirty); a store that *misses* also
    /// drains immediately — the miss status holding register that tracks
    /// the write-allocate fill owns the write from then on (the fill
    /// installs the line dirty), which is what lets a lockup-free cache
    /// absorb store misses without serialising commit. Only a structural
    /// rejection (no port, no MSHR) keeps the head for another cycle.
    pub fn tick(&mut self, now: u64, cache: &mut DataCache) {
        let Some(head) = self.fifo.front() else {
            return;
        };
        match cache.access(now, head.access.addr, AccessKind::Store) {
            AccessOutcome::Hit { .. } | AccessOutcome::Miss { .. } => {
                self.fifo.pop_front();
                self.drained += 1;
            }
            AccessOutcome::Retry { .. } => {
                // No port/MSHR this cycle: try again next tick.
            }
        }
    }
}

impl vpr_snap::Snap for PendingStore {
    fn save(&self, enc: &mut vpr_snap::Encoder) {
        enc.put_u64(self.seq);
        self.access.save(enc);
    }

    fn load(dec: &mut vpr_snap::Decoder<'_>) -> Self {
        Self {
            seq: dec.take_u64(),
            access: MemAccess::load(dec),
        }
    }
}

impl vpr_snap::Snap for StoreBuffer {
    fn save(&self, enc: &mut vpr_snap::Encoder) {
        self.fifo.save(enc);
        enc.put_usize(self.capacity);
        enc.put_u64(self.drained);
        enc.put_u64(self.full_stalls);
    }

    fn load(dec: &mut vpr_snap::Decoder<'_>) -> Self {
        Self {
            fifo: VecDeque::<PendingStore>::load(dec),
            capacity: dec.take_usize(),
            drained: dec.take_u64(),
            full_stalls: dec.take_u64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CacheConfig;

    fn cache() -> DataCache {
        DataCache::new(CacheConfig::default())
    }

    fn store(seq: u64, addr: u64) -> PendingStore {
        PendingStore {
            seq,
            access: MemAccess::word(addr),
        }
    }

    #[test]
    fn drains_a_hit_immediately() {
        let mut dc = cache();
        // Warm the line.
        dc.access(0, 0x100, AccessKind::Load);
        let mut sb = StoreBuffer::new(4);
        sb.push(store(1, 0x100));
        sb.tick(60, &mut dc); // hit: the cache buffers the write
        assert!(sb.is_empty());
        assert_eq!(sb.drained(), 1);
    }

    #[test]
    fn store_miss_drains_into_an_mshr() {
        let mut dc = cache();
        let mut sb = StoreBuffer::new(4);
        sb.push(store(1, 0x100));
        sb.tick(0, &mut dc); // miss: the MSHR owns the write from here
        assert!(sb.is_empty());
        assert_eq!(dc.inflight_fills(), 1);
        // Once the fill lands the line is dirty (write-allocate): evicting
        // it later writes back.
        dc.access(60, 0x100 + 16 * 1024, AccessKind::Load); // conflict miss
        dc.access(200, 0x100, AccessKind::Load); // install conflicting line
        assert_eq!(dc.stats().dirty_evictions, 1);
    }

    #[test]
    fn store_retries_when_mshrs_are_full() {
        let mut dc = DataCache::new(CacheConfig {
            mshrs: 1,
            ..CacheConfig::default()
        });
        dc.access(0, 0x5000, AccessKind::Load); // occupy the only MSHR
        let mut sb = StoreBuffer::new(4);
        sb.push(store(1, 0x100));
        sb.tick(1, &mut dc);
        assert_eq!(sb.len(), 1, "no MSHR: the store waits");
        sb.tick(51, &mut dc); // fill done, MSHR free
        assert!(sb.is_empty());
    }

    #[test]
    fn capacity_and_stall_counting() {
        let mut sb = StoreBuffer::new(2);
        assert!(sb.push(store(1, 0)));
        assert!(sb.push(store(2, 8)));
        assert!(!sb.push(store(3, 16)));
        assert_eq!(sb.full_stalls(), 1);
        assert!(sb.is_full());
    }

    #[test]
    fn forwards_detects_overlap() {
        let mut sb = StoreBuffer::new(2);
        sb.push(store(1, 0x100));
        assert!(sb.forwards(&MemAccess::word(0x100)));
        assert!(sb.forwards(&MemAccess::word(0x104)));
        assert!(!sb.forwards(&MemAccess::word(0x108)));
    }

    #[test]
    fn next_activity_lower_bound() {
        // Empty buffer: no self-generated activity.
        let dc = cache();
        let sb = StoreBuffer::new(4);
        assert_eq!(sb.next_activity(0, &dc), None);

        // Grantable head (fresh MSHR available): active now.
        let mut sb = StoreBuffer::new(4);
        sb.push(store(1, 0x100));
        assert_eq!(sb.next_activity(0, &dc), Some(0));

        // MSHR-blocked head: bounded by the earliest fill, and every
        // cycle before it ticks exactly one bounced probe.
        let mut dc = DataCache::new(CacheConfig {
            mshrs: 1,
            ..CacheConfig::default()
        });
        dc.access(0, 0x5000, AccessKind::Load); // occupy the only MSHR
        let fill = dc.earliest_fill().expect("one fill in flight");
        let mut sb = StoreBuffer::new(4);
        sb.push(store(2, 0x100));
        assert_eq!(sb.next_activity(1, &dc), Some(fill));
        let before = dc.stats().mshr_retries;
        for t in 1..fill {
            sb.tick(t, &mut dc);
            assert_eq!(sb.len(), 1, "blocked head must not drain at {t}");
        }
        assert_eq!(
            dc.stats().mshr_retries,
            before + (fill - 1),
            "one bounced probe per blocked cycle"
        );
        // At the bound the fill installs and the head drains.
        assert_eq!(sb.next_activity(fill, &dc), Some(fill));
        sb.tick(fill, &mut dc);
        assert!(sb.is_empty(), "head drains once the fill lands");
    }

    #[test]
    fn in_order_drain() {
        let mut dc = cache();
        dc.access(0, 0x100, AccessKind::Load);
        dc.access(0, 0x200, AccessKind::Load);
        let mut sb = StoreBuffer::new(4);
        sb.push(store(1, 0x100));
        sb.push(store(2, 0x200));
        let mut t = 60;
        while !sb.is_empty() && t < 200 {
            sb.tick(t, &mut dc);
            t += 1;
        }
        assert_eq!(sb.drained(), 2);
        assert!(t < 200, "both stores drain promptly on hits");
    }
}
