//! Miss status holding registers for the lockup-free cache.

/// One in-flight line fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mshr {
    /// Line-aligned address being fetched from L2.
    pub line_addr: u64,
    /// Cycle at which the fill completes and the line can be installed.
    pub ready_at: u64,
    /// Whether any merged access was a store (the installed line starts
    /// dirty).
    pub dirty: bool,
    /// Number of accesses merged into this fill (including the initiating
    /// one).
    pub merged: u32,
}

/// The set of miss status holding registers.
///
/// The paper's cache "allows up to 8 pending misses to different cache
/// lines" (Kroft's lockup-free organisation): a miss to a line already being
/// fetched merges into the existing entry; a miss to a new line when all
/// registers are busy must be retried later.
#[derive(Debug, Clone)]
pub struct MshrFile {
    entries: Vec<Mshr>,
    capacity: usize,
}

impl MshrFile {
    /// Creates a file with `capacity` registers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (the cache could never miss).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "need at least one MSHR");
        Self {
            entries: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Number of in-flight fills.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no fill is in flight.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when no further distinct-line miss can be accepted.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    /// Looks up the in-flight fill for `line_addr`.
    pub fn find(&self, line_addr: u64) -> Option<&Mshr> {
        self.entries.iter().find(|m| m.line_addr == line_addr)
    }

    /// Merges an access into an in-flight fill, returning the completion
    /// cycle, or `None` if the line is not in flight.
    pub fn merge(&mut self, line_addr: u64, is_store: bool) -> Option<u64> {
        let m = self.entries.iter_mut().find(|m| m.line_addr == line_addr)?;
        m.merged += 1;
        m.dirty |= is_store;
        Some(m.ready_at)
    }

    /// Allocates a new fill. Returns `false` (and changes nothing) when all
    /// registers are busy.
    ///
    /// # Panics
    ///
    /// Panics if the line is already in flight — callers must [`merge`]
    /// first; a duplicate entry would install the line twice.
    ///
    /// [`merge`]: MshrFile::merge
    pub fn allocate(&mut self, line_addr: u64, ready_at: u64, is_store: bool) -> bool {
        assert!(
            self.find(line_addr).is_none(),
            "line {line_addr:#x} already has an MSHR"
        );
        if self.is_full() {
            return false;
        }
        self.entries.push(Mshr {
            line_addr,
            ready_at,
            dirty: is_store,
            merged: 1,
        });
        true
    }

    /// The earliest completion cycle among in-flight fills, if any — the
    /// next moment MSHR occupancy (and the resident line set) can change.
    pub fn earliest_ready(&self) -> Option<u64> {
        self.entries.iter().map(|m| m.ready_at).min()
    }

    /// Removes and returns every fill that has completed by `now`.
    pub fn drain_completed(&mut self, now: u64) -> Vec<Mshr> {
        let mut done = Vec::new();
        self.entries.retain(|m| {
            if m.ready_at <= now {
                done.push(*m);
                false
            } else {
                true
            }
        });
        done
    }
}

impl vpr_snap::Snap for Mshr {
    fn save(&self, enc: &mut vpr_snap::Encoder) {
        enc.put_u64(self.line_addr);
        enc.put_u64(self.ready_at);
        enc.put_bool(self.dirty);
        enc.put_u32(self.merged);
    }

    fn load(dec: &mut vpr_snap::Decoder<'_>) -> Self {
        Self {
            line_addr: dec.take_u64(),
            ready_at: dec.take_u64(),
            dirty: dec.take_bool(),
            merged: dec.take_u32(),
        }
    }
}

impl vpr_snap::Snap for MshrFile {
    fn save(&self, enc: &mut vpr_snap::Encoder) {
        self.entries.save(enc);
        enc.put_usize(self.capacity);
    }

    fn load(dec: &mut vpr_snap::Decoder<'_>) -> Self {
        Self {
            entries: Vec::<Mshr>::load(dec),
            capacity: dec.take_usize(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_until_full() {
        let mut f = MshrFile::new(2);
        assert!(f.allocate(0x000, 50, false));
        assert!(f.allocate(0x020, 55, false));
        assert!(f.is_full());
        assert!(!f.allocate(0x040, 60, false));
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn merge_returns_existing_ready_time() {
        let mut f = MshrFile::new(2);
        f.allocate(0x100, 77, false);
        assert_eq!(f.merge(0x100, true), Some(77));
        assert_eq!(f.merge(0x200, false), None);
        let m = f.find(0x100).unwrap();
        assert_eq!(m.merged, 2);
        assert!(m.dirty, "store merge must mark the line dirty");
    }

    #[test]
    fn drain_returns_only_completed() {
        let mut f = MshrFile::new(4);
        f.allocate(0x000, 10, false);
        f.allocate(0x020, 20, true);
        let done = f.drain_completed(15);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].line_addr, 0x000);
        assert_eq!(f.len(), 1);
        let done = f.drain_completed(25);
        assert_eq!(done.len(), 1);
        assert!(done[0].dirty);
        assert!(f.is_empty());
    }

    #[test]
    #[should_panic(expected = "already has an MSHR")]
    fn duplicate_allocation_panics() {
        let mut f = MshrFile::new(2);
        f.allocate(0x100, 10, false);
        f.allocate(0x100, 20, false);
    }
}
