//! Ring-buffered per-instruction pipeline lifecycle trace.
//!
//! Each pipeline event is one fixed-size [`TraceRec`] pushed into a
//! bounded ring ([`PipelineTrace`]); when the ring is full the oldest
//! record is dropped (and counted), so a trace of any length costs a
//! fixed amount of memory and the *last* N events — the ones an anomaly
//! post-mortem needs — are always retained. Two renderings:
//!
//! * **JSONL** — one compact JSON object per line (`{"c": cycle,
//!   "s": seq, "k": kind, ...}`), machine-checkable (see
//!   [`validate_jsonl_line`]);
//! * **Konata-compatible text** — the `Kanata\t0004` pipeline-viewer
//!   format, one instruction lane per sequence number.
//!
//! Operation-class names are injected as plain strings at construction
//! ([`PipelineTrace::new`]) so this crate stays ISA-agnostic.

use std::collections::VecDeque;
use std::io::{self, Write};

/// Lifecycle event kinds, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum TraceKind {
    /// Instruction entered the fetch buffer (`flag` = wrong-path).
    Fetch,
    /// Instruction renamed into ROB/IQ (`flag` = wrong-path).
    Rename,
    /// Instruction issued to a functional unit.
    Issue,
    /// Instruction completed (result broadcast).
    Complete,
    /// Instruction committed.
    Commit,
    /// Instruction squashed by a mispredicted branch.
    Squash,
    /// Instruction re-dispatched (`flag` = register-pressure re-execution,
    /// else memory-order).
    Reexec,
    /// VP physical register allocated (`op` = class, `flag` = at issue).
    VpAlloc,
    /// VP virtual tag bound to its physical register (`op` = class).
    VpBind,
    /// Completion deferred on exhausted write ports.
    WbStall,
}

impl TraceKind {
    /// The JSONL `k` field value.
    pub fn label(self) -> &'static str {
        match self {
            TraceKind::Fetch => "fetch",
            TraceKind::Rename => "rename",
            TraceKind::Issue => "issue",
            TraceKind::Complete => "complete",
            TraceKind::Commit => "commit",
            TraceKind::Squash => "squash",
            TraceKind::Reexec => "reexec",
            TraceKind::VpAlloc => "vp-alloc",
            TraceKind::VpBind => "vp-bind",
            TraceKind::WbStall => "wb-stall",
        }
    }

    /// All kind labels a valid JSONL line may carry.
    pub const LABELS: [&'static str; 10] = [
        "fetch", "rename", "issue", "complete", "commit", "squash", "reexec", "vp-alloc",
        "vp-bind", "wb-stall",
    ];
}

/// One fixed-size trace record. Field meaning varies slightly by kind
/// (see [`TraceKind`]): `pc` is only meaningful for fetch/rename, `op`
/// is an operation-class index for rename/issue/commit and a register
/// class (0 = int, 1 = fp) for the VP events, `flag` is a kind-specific
/// boolean.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRec {
    /// Cycle the event occurred.
    pub cycle: u64,
    /// Dynamic sequence number (0 for fetch — seq is assigned at rename).
    pub seq: u64,
    /// Event kind.
    pub kind: TraceKind,
    /// Program counter (fetch/rename only).
    pub pc: u64,
    /// Operation-class or register-class index, per kind.
    pub op: u8,
    /// Kind-specific boolean flag.
    pub flag: u8,
}

impl TraceRec {
    /// Builds a record.
    pub fn new(cycle: u64, seq: u64, kind: TraceKind, pc: u64, op: u8, flag: u8) -> Self {
        TraceRec {
            cycle,
            seq,
            kind,
            pc,
            op,
            flag,
        }
    }
}

/// The bounded lifecycle-event ring plus its rendering tables.
#[derive(Debug, Clone)]
pub struct PipelineTrace {
    recs: VecDeque<TraceRec>,
    cap: usize,
    dropped: u64,
    op_names: Vec<String>,
}

impl PipelineTrace {
    /// A ring holding the last `cap` records. `op_names` maps the dense
    /// operation-class index to its display name (pass the ISA's
    /// `OpClass::ALL` names); unknown indices render as `op<N>`.
    pub fn new(cap: usize, op_names: Vec<String>) -> Self {
        PipelineTrace {
            recs: VecDeque::with_capacity(cap.min(1 << 20)),
            cap: cap.max(1),
            dropped: 0,
            op_names,
        }
    }

    /// Appends a record, evicting (and counting) the oldest when full.
    #[inline]
    pub fn push(&mut self, rec: TraceRec) {
        if self.recs.len() == self.cap {
            self.recs.pop_front();
            self.dropped += 1;
        }
        self.recs.push_back(rec);
    }

    /// Records currently retained.
    pub fn len(&self) -> usize {
        self.recs.len()
    }

    /// True when no records are retained.
    pub fn is_empty(&self) -> bool {
        self.recs.is_empty()
    }

    /// Records evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Drops all retained records and the eviction count.
    pub fn clear(&mut self) {
        self.recs.clear();
        self.dropped = 0;
    }

    /// Iterates retained records, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceRec> {
        self.recs.iter()
    }

    fn op_name(&self, idx: u8) -> String {
        self.op_names
            .get(usize::from(idx))
            .cloned()
            .unwrap_or_else(|| format!("op{idx}"))
    }

    /// Renders one record as a compact JSON object (no trailing newline).
    pub fn rec_to_json(&self, r: &TraceRec) -> String {
        let mut s = format!(
            "{{\"c\": {}, \"s\": {}, \"k\": \"{}\"",
            r.cycle,
            r.seq,
            r.kind.label()
        );
        match r.kind {
            TraceKind::Fetch => {
                s.push_str(&format!(", \"pc\": \"{:#x}\", \"wp\": {}", r.pc, r.flag));
            }
            TraceKind::Rename => {
                s.push_str(&format!(
                    ", \"pc\": \"{:#x}\", \"op\": \"{}\", \"wp\": {}",
                    r.pc,
                    self.op_name(r.op),
                    r.flag
                ));
            }
            TraceKind::Issue | TraceKind::Commit => {
                s.push_str(&format!(", \"op\": \"{}\"", self.op_name(r.op)));
            }
            TraceKind::Reexec => {
                s.push_str(&format!(
                    ", \"why\": \"{}\"",
                    if r.flag != 0 { "reg" } else { "mem" }
                ));
            }
            TraceKind::VpAlloc => {
                s.push_str(&format!(
                    ", \"cls\": \"{}\", \"at\": \"{}\"",
                    if r.op == 0 { "int" } else { "fp" },
                    if r.flag != 0 { "issue" } else { "wb" }
                ));
            }
            TraceKind::VpBind => {
                s.push_str(&format!(
                    ", \"cls\": \"{}\"",
                    if r.op == 0 { "int" } else { "fp" }
                ));
            }
            TraceKind::Complete | TraceKind::Squash | TraceKind::WbStall => {}
        }
        s.push('}');
        s
    }

    /// Writes every retained record as JSONL, oldest first.
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn emit_jsonl(&self, w: &mut impl Write) -> io::Result<()> {
        for r in &self.recs {
            writeln!(w, "{}", self.rec_to_json(r))?;
        }
        Ok(())
    }

    /// Writes the last `n` retained records as JSONL — the anomaly dump.
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn dump_last(&self, n: usize, w: &mut impl Write) -> io::Result<()> {
        let skip = self.recs.len().saturating_sub(n);
        for r in self.recs.iter().skip(skip) {
            writeln!(w, "{}", self.rec_to_json(r))?;
        }
        Ok(())
    }

    /// Writes the retained records as Konata-compatible pipeline-viewer
    /// text (`Kanata 0004` format). One lane per sequence number;
    /// instructions open at their rename record (where `seq` is
    /// assigned), progress through `R`/`Is`/`Cp` stages, and retire (or
    /// flush) at commit (or squash).
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn emit_konata(&self, w: &mut impl Write) -> io::Result<()> {
        writeln!(w, "Kanata\t0004")?;
        let mut cur_cycle: Option<u64> = None;
        let mut retired: u64 = 0;
        for r in &self.recs {
            match cur_cycle {
                None => {
                    writeln!(w, "C=\t{}", r.cycle)?;
                    cur_cycle = Some(r.cycle);
                }
                Some(c) if r.cycle > c => {
                    writeln!(w, "C\t{}", r.cycle - c)?;
                    cur_cycle = Some(r.cycle);
                }
                _ => {}
            }
            match r.kind {
                TraceKind::Fetch => {} // seq not assigned yet — lane opens at rename
                TraceKind::Rename => {
                    writeln!(w, "I\t{}\t{}\t0", r.seq, r.seq)?;
                    writeln!(w, "L\t{}\t0\t{:#x}: {}", r.seq, r.pc, self.op_name(r.op))?;
                    writeln!(w, "S\t{}\t0\tR", r.seq)?;
                }
                TraceKind::Issue => writeln!(w, "S\t{}\t0\tIs", r.seq)?,
                TraceKind::Complete => writeln!(w, "S\t{}\t0\tCp", r.seq)?,
                TraceKind::Commit => {
                    retired += 1;
                    writeln!(w, "R\t{}\t{}\t0", r.seq, retired)?;
                }
                TraceKind::Squash => writeln!(w, "R\t{}\t0\t1", r.seq)?,
                TraceKind::Reexec => writeln!(w, "S\t{}\t0\tRx", r.seq)?,
                TraceKind::VpAlloc => writeln!(w, "L\t{}\t1\tvp-alloc", r.seq)?,
                TraceKind::VpBind => writeln!(w, "L\t{}\t1\tvp-bind", r.seq)?,
                TraceKind::WbStall => writeln!(w, "L\t{}\t1\twb-stall", r.seq)?,
            }
        }
        Ok(())
    }
}

/// Checks one JSONL trace line for schema conformance: a flat JSON
/// object with integer `"c"` and `"s"` fields and a known `"k"` kind.
/// Returns a description of the first problem found, if any.
///
/// This is a purposely small structural validator (the crate has no JSON
/// parser dependency); it accepts exactly the shape [`emit_jsonl`]
/// produces.
///
/// [`emit_jsonl`]: PipelineTrace::emit_jsonl
pub fn validate_jsonl_line(line: &str) -> Result<(), String> {
    let t = line.trim();
    if !t.starts_with('{') || !t.ends_with('}') {
        return Err("line is not a JSON object".into());
    }
    let field = |key: &str| -> Option<String> {
        let pat = format!("\"{key}\": ");
        let start = t.find(&pat)? + pat.len();
        let rest = &t[start..];
        let end = rest.find([',', '}'])?;
        Some(rest[..end].trim().to_string())
    };
    let c = field("c").ok_or("missing \"c\" field")?;
    if c.parse::<u64>().is_err() {
        return Err(format!("\"c\" is not an integer: {c}"));
    }
    let s = field("s").ok_or("missing \"s\" field")?;
    if s.parse::<u64>().is_err() {
        return Err(format!("\"s\" is not an integer: {s}"));
    }
    let k = field("k").ok_or("missing \"k\" field")?;
    let k = k.trim_matches('"');
    if !TraceKind::LABELS.contains(&k) {
        return Err(format!("unknown kind {k:?}"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names() -> Vec<String> {
        vec!["int.alu".into(), "load".into()]
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut t = PipelineTrace::new(2, names());
        for i in 0..5u64 {
            t.push(TraceRec::new(i, i, TraceKind::Commit, 0, 0, 0));
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
        let cycles: Vec<u64> = t.iter().map(|r| r.cycle).collect();
        assert_eq!(cycles, vec![3, 4]);
    }

    #[test]
    fn jsonl_lines_validate() {
        let mut t = PipelineTrace::new(64, names());
        t.push(TraceRec::new(1, 0, TraceKind::Fetch, 0x40, 0, 0));
        t.push(TraceRec::new(2, 7, TraceKind::Rename, 0x40, 1, 0));
        t.push(TraceRec::new(3, 7, TraceKind::Issue, 0, 1, 0));
        t.push(TraceRec::new(5, 7, TraceKind::Complete, 0, 0, 0));
        t.push(TraceRec::new(6, 7, TraceKind::Commit, 0, 1, 0));
        t.push(TraceRec::new(6, 8, TraceKind::Squash, 0, 0, 0));
        t.push(TraceRec::new(7, 9, TraceKind::Reexec, 0, 0, 1));
        t.push(TraceRec::new(7, 9, TraceKind::VpAlloc, 0, 1, 1));
        t.push(TraceRec::new(8, 9, TraceKind::VpBind, 0, 0, 0));
        t.push(TraceRec::new(9, 9, TraceKind::WbStall, 0, 0, 0));
        let mut out = Vec::new();
        t.emit_jsonl(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text.lines().count(), 10);
        for line in text.lines() {
            validate_jsonl_line(line).unwrap_or_else(|e| panic!("{e}: {line}"));
        }
        assert!(text.contains("\"op\": \"load\""));
        assert!(text.contains("\"why\": \"reg\""));
        assert!(text.contains("\"at\": \"issue\""));
    }

    #[test]
    fn validator_rejects_bad_lines() {
        assert!(validate_jsonl_line("not json").is_err());
        assert!(validate_jsonl_line("{\"c\": 1, \"s\": 2}").is_err());
        assert!(validate_jsonl_line("{\"c\": 1, \"s\": 2, \"k\": \"bogus\"}").is_err());
        assert!(validate_jsonl_line("{\"c\": -1, \"s\": 2, \"k\": \"fetch\"}").is_err());
    }

    #[test]
    fn dump_last_takes_the_tail() {
        let mut t = PipelineTrace::new(16, names());
        for i in 0..6u64 {
            t.push(TraceRec::new(i, i, TraceKind::Complete, 0, 0, 0));
        }
        let mut out = Vec::new();
        t.dump_last(2, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("\"c\": 4") && text.contains("\"c\": 5"));
    }

    #[test]
    fn konata_has_header_and_retire_lines() {
        let mut t = PipelineTrace::new(16, names());
        t.push(TraceRec::new(2, 7, TraceKind::Rename, 0x40, 0, 0));
        t.push(TraceRec::new(3, 7, TraceKind::Issue, 0, 0, 0));
        t.push(TraceRec::new(6, 7, TraceKind::Commit, 0, 0, 0));
        let mut out = Vec::new();
        t.emit_konata(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("Kanata\t0004\n"));
        assert!(text.contains("C=\t2"));
        assert!(text.contains("I\t7\t7\t0"));
        assert!(text.contains("R\t7\t1\t0"));
    }
}
