//! Sweep run-telemetry: how the experiment harness spent its time.
//!
//! Where [`crate::metrics`] watches the *simulated machine*, this module
//! watches the *sweep engine*: per-job wall clock and queue wait, worker
//! utilisation, checkpoint-cache behaviour (including cross-NRR
//! shared-pass reuse), and fault recoveries. The bench crate writes one
//! `run.telemetry.json` next to each experiment artefact from a
//! [`RunTelemetry`]; unlike the metrics block, telemetry is wall-clock
//! data and is *not* expected to be byte-identical across runs, which is
//! why it lives in its own file rather than inside the experiment JSON.

use crate::metrics::json_f64;
use std::fmt::Write as _;

/// How a sweep job interacted with the checkpoint cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobOutcome {
    /// A checkpoint artefact was restored from disk.
    CacheHit,
    /// No usable artefact existed; the job simulated (and possibly
    /// deposited) it.
    CacheMiss,
    /// The job reused a shared group artefact already loaded for another
    /// point (cross-NRR shared-pass reuse).
    SharedReuse,
    /// The sweep ran without a checkpoint store.
    NoStore,
}

impl JobOutcome {
    fn label(self) -> &'static str {
        match self {
            JobOutcome::CacheHit => "hit",
            JobOutcome::CacheMiss => "miss",
            JobOutcome::SharedReuse => "shared-reuse",
            JobOutcome::NoStore => "no-store",
        }
    }
}

/// Telemetry for one sweep job (one configuration point or one group
/// warm pass).
#[derive(Debug, Clone, PartialEq)]
pub struct JobTelemetry {
    /// Human-readable point label (`bench/scheme@Nr`).
    pub label: String,
    /// Pipeline stage the job ran (`simulate`, `warm-pass`, `sample`).
    pub stage: &'static str,
    /// Seconds between sweep submission and the job starting on a
    /// worker.
    pub queue_wait_s: f64,
    /// Seconds the job spent executing.
    pub wall_s: f64,
    /// Checkpoint-cache interaction.
    pub outcome: JobOutcome,
    /// Injected-fault recoveries this job survived (retries that then
    /// succeeded).
    pub recovered: u64,
}

/// Aggregated telemetry for one sweep invocation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunTelemetry {
    /// Worker threads requested (0 = serial in-caller execution).
    pub jobs: usize,
    /// End-to-end sweep wall clock in seconds.
    pub wall_s: f64,
    /// Checkpoint artefacts restored from disk.
    pub checkpoint_hits: u64,
    /// Checkpoint lookups that fell back to simulation.
    pub checkpoint_misses: u64,
    /// Points served by an already-loaded shared group artefact.
    pub shared_reuse_hits: u64,
    /// Injected-fault recoveries across all jobs.
    pub fault_recoveries: u64,
    /// Per-job records, in submission order.
    pub points: Vec<JobTelemetry>,
}

impl RunTelemetry {
    /// Empty telemetry for a sweep running with `jobs` workers.
    pub fn new(jobs: usize) -> Self {
        RunTelemetry {
            jobs,
            ..Default::default()
        }
    }

    /// Records one finished job, folding its outcome into the cache and
    /// fault counters.
    pub fn push(&mut self, job: JobTelemetry) {
        match job.outcome {
            JobOutcome::CacheHit => self.checkpoint_hits += 1,
            JobOutcome::CacheMiss => self.checkpoint_misses += 1,
            JobOutcome::SharedReuse => self.shared_reuse_hits += 1,
            JobOutcome::NoStore => {}
        }
        self.fault_recoveries += job.recovered;
        self.points.push(job);
    }

    /// Total seconds workers spent executing jobs.
    pub fn busy_s(&self) -> f64 {
        self.points.iter().map(|p| p.wall_s).sum()
    }

    /// Fraction of available worker-seconds spent executing jobs
    /// (`busy / (workers × wall)`; 0 when no wall clock was recorded).
    pub fn worker_utilisation(&self) -> f64 {
        let workers = self.jobs.max(1) as f64;
        if self.wall_s <= 0.0 {
            0.0
        } else {
            (self.busy_s() / (workers * self.wall_s)).min(1.0)
        }
    }

    /// Folds another sweep's telemetry into this one (multi-sweep
    /// experiments such as the NRR figures).
    pub fn merge(&mut self, other: RunTelemetry) {
        self.jobs = self.jobs.max(other.jobs);
        self.wall_s += other.wall_s;
        self.checkpoint_hits += other.checkpoint_hits;
        self.checkpoint_misses += other.checkpoint_misses;
        self.shared_reuse_hits += other.shared_reuse_hits;
        self.fault_recoveries += other.fault_recoveries;
        self.points.extend(other.points);
    }

    /// The `run.telemetry.json` document.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        let _ = writeln!(s, "  \"schema\": \"vpr-run-telemetry/v1\",");
        let _ = writeln!(s, "  \"jobs\": {},", self.jobs);
        let _ = writeln!(s, "  \"wall_s\": {},", json_f64(self.wall_s));
        let _ = writeln!(s, "  \"busy_s\": {},", json_f64(self.busy_s()));
        let _ = writeln!(
            s,
            "  \"worker_utilisation\": {},",
            json_f64(self.worker_utilisation())
        );
        let _ = writeln!(
            s,
            "  \"checkpoint\": {{\"hits\": {}, \"misses\": {}, \"shared_reuse_hits\": {}}},",
            self.checkpoint_hits, self.checkpoint_misses, self.shared_reuse_hits
        );
        let _ = writeln!(s, "  \"fault_recoveries\": {},", self.fault_recoveries);
        let _ = writeln!(s, "  \"points\": [");
        for (i, p) in self.points.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"label\": \"{}\", \"stage\": \"{}\", \"queue_wait_s\": {}, \
                 \"wall_s\": {}, \"checkpoint\": \"{}\", \"recovered\": {}}}",
                escape(&p.label),
                p.stage,
                json_f64(p.queue_wait_s),
                json_f64(p.wall_s),
                p.outcome.label(),
                p.recovered
            );
            s.push_str(if i + 1 < self.points.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Minimal JSON string escaping (labels are benign, but stay correct).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(label: &str, outcome: JobOutcome, wall: f64) -> JobTelemetry {
        JobTelemetry {
            label: label.into(),
            stage: "simulate",
            queue_wait_s: 0.0,
            wall_s: wall,
            outcome,
            recovered: 0,
        }
    }

    #[test]
    fn push_folds_outcomes_into_counters() {
        let mut t = RunTelemetry::new(2);
        t.push(job("a", JobOutcome::CacheHit, 1.0));
        t.push(job("b", JobOutcome::CacheMiss, 1.0));
        t.push(job("c", JobOutcome::SharedReuse, 2.0));
        assert_eq!(t.checkpoint_hits, 1);
        assert_eq!(t.checkpoint_misses, 1);
        assert_eq!(t.shared_reuse_hits, 1);
        t.wall_s = 2.0;
        assert!((t.busy_s() - 4.0).abs() < 1e-12);
        assert!((t.worker_utilisation() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn json_contains_schema_and_points() {
        let mut t = RunTelemetry::new(1);
        t.push(job("swim/conventional@64r", JobOutcome::NoStore, 0.5));
        t.wall_s = 0.5;
        let j = t.to_json();
        assert!(j.contains("\"schema\": \"vpr-run-telemetry/v1\""));
        assert!(j.contains("\"label\": \"swim/conventional@64r\""));
        assert!(j.contains("\"checkpoint\": \"no-store\""));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = RunTelemetry::new(2);
        a.push(job("a", JobOutcome::CacheHit, 1.0));
        a.wall_s = 1.0;
        let mut b = RunTelemetry::new(4);
        b.push(job("b", JobOutcome::CacheMiss, 2.0));
        b.wall_s = 2.0;
        a.merge(b);
        assert_eq!(a.jobs, 4);
        assert_eq!(a.points.len(), 2);
        assert_eq!(a.checkpoint_hits, 1);
        assert_eq!(a.checkpoint_misses, 1);
        assert!((a.wall_s - 3.0).abs() < 1e-12);
    }
}
