//! # vpr-obs — observability for the VPR simulator
//!
//! A dependency-free (std-only) telemetry layer with three pillars:
//!
//! * [`metrics`] — a metrics registry of counters, gauges and log-bucketed
//!   histograms, fed change-driven (never per-quiescent-cycle) by the
//!   pipeline's observer hooks, exported as a JSON `metrics` block and as
//!   Prometheus-style text exposition;
//! * [`trace`] — a ring-buffered per-instruction pipeline lifecycle trace
//!   (fetch → rename → issue → complete → commit/squash, plus the VP
//!   scheme's bind/alloc events) emitted as compact JSONL or
//!   Konata-compatible text, with a last-N anomaly dump;
//! * [`telemetry`] — per-sweep run telemetry (per-job wall clock and queue
//!   wait, worker utilisation, checkpoint-cache hits and reuse,
//!   fault-recovery counts) written next to each experiment artefact;
//! * [`progress`] — a rate-limited stderr progress reporter for long
//!   sweeps, auto-disabled when stderr is not a terminal.
//!
//! ## The observer contract
//!
//! The pipeline is generic over a [`PipeObserver`]. Every hook call in the
//! core is guarded by `if O::ENABLED { ... }` on the associated constant,
//! so with the default [`NoObs`] the instrumentation monomorphises to
//! nothing: zero branches, zero stores, zero layout change on the hot
//! structures. Enabling observation must never change simulated state —
//! observers receive copies of primitive values and have no channel back
//! into the pipeline, which keeps `SimStats` bit-exact whether or not a
//! run is observed (pinned by the traced-vs-untraced identity test in the
//! bench crate).
//!
//! This crate deliberately depends on nothing in the workspace so that
//! every layer (frontend, mem, core, bench) can use it without cycles;
//! ISA specifics (operation names) are passed in as plain data.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod progress;
pub mod service;
pub mod telemetry;
pub mod trace;

pub use metrics::{Histogram, MetricValue, Registry, SimMetrics};
pub use progress::Progress;
pub use service::ServeMetrics;
pub use telemetry::{JobOutcome, JobTelemetry, RunTelemetry};
pub use trace::{PipelineTrace, TraceKind, TraceRec};

/// Pipeline lifecycle observer, statically dispatched.
///
/// All hooks have empty default bodies; an implementation overrides the
/// ones it cares about and sets [`PipeObserver::ENABLED`] to `true`. The
/// core only invokes hooks when `ENABLED` holds, so a disabled observer
/// ([`NoObs`]) compiles to straight-line unobserved code.
///
/// Hook arguments are primitives by design: `op` is the dense
/// [`OpClass`](https://docs.rs) index of the instruction's operation class
/// (the ISA crate's `OpClass::index()`), `class` is the register-class
/// index (0 = int, 1 = fp). This keeps `vpr-obs` free of ISA types.
pub trait PipeObserver {
    /// Whether the core should invoke any hooks at all. Checked as a
    /// compile-time constant at every hook site.
    const ENABLED: bool;

    /// An instruction entered the fetch buffer.
    #[inline]
    fn on_fetch(&mut self, _cycle: u64, _pc: u64, _wrong_path: bool) {}
    /// An instruction was renamed into the ROB/IQ (allocated `seq`).
    #[inline]
    fn on_rename(&mut self, _cycle: u64, _seq: u64, _pc: u64, _op: u8, _wrong_path: bool) {}
    /// An instruction was issued to a functional unit (counts
    /// re-executions too — one event per execution).
    #[inline]
    fn on_issue(&mut self, _cycle: u64, _seq: u64, _op: u8) {}
    /// An instruction completed (result broadcast / marked done).
    #[inline]
    fn on_complete(&mut self, _cycle: u64, _seq: u64) {}
    /// An instruction committed.
    #[inline]
    fn on_commit(&mut self, _cycle: u64, _seq: u64, _op: u8) {}
    /// An instruction was squashed by a mispredicted branch.
    #[inline]
    fn on_squash(&mut self, _cycle: u64, _seq: u64) {}
    /// An instruction was sent back for re-execution. `register` is true
    /// for VP register-pressure re-executions (no physical register at
    /// write-back), false for memory-order violations.
    #[inline]
    fn on_reexecute(&mut self, _cycle: u64, _seq: u64, _register: bool) {}
    /// The VP scheme allocated a physical register (`at_issue` tells
    /// issue-time from write-back-time allocation).
    #[inline]
    fn on_vp_alloc(&mut self, _cycle: u64, _seq: u64, _class: u8, _at_issue: bool) {}
    /// The VP scheme bound a virtual tag to its physical register in the
    /// physical map table at write-back.
    #[inline]
    fn on_vp_bind(&mut self, _cycle: u64, _seq: u64, _class: u8) {}
    /// `count` issue attempts were denied by the NRR allocation gate for
    /// register class `class`. Batched: the cycle governor reports a
    /// whole quiescent stretch in one call.
    #[inline]
    fn on_nrr_denial(&mut self, _class: u8, _count: u64) {}
    /// A completion was deferred because the cycle's register-file write
    /// ports were exhausted.
    #[inline]
    fn on_wb_port_stall(&mut self, _cycle: u64, _seq: u64) {}
    /// Per-active-cycle occupancy sample (the governor skips quiescent
    /// cycles, so this is change-driven — see [`Self::on_idle_skip`]).
    #[inline]
    fn on_occupancy(&mut self, _rob: usize, _iq: usize, _events: usize, _sb: usize, _mshr: usize) {}
    /// The store buffer drained `drained` stores this cycle, leaving
    /// `pending` buffered. `drained == 0` with `pending > 0` is a retry
    /// stall; consecutive occurrences form a retry storm.
    #[inline]
    fn on_store_drain(&mut self, _drained: u64, _pending: usize) {}
    /// The cycle governor skipped `skipped` provably-quiescent cycles.
    #[inline]
    fn on_idle_skip(&mut self, _skipped: u64) {}
    /// Clear all accumulated observations (used when the measurement
    /// window opens after warm-up, mirroring `SimStats` windowing).
    #[inline]
    fn reset(&mut self) {}
}

/// The disabled observer: every hook is a no-op and `ENABLED` is false,
/// so the core's hook sites vanish entirely under monomorphisation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoObs;

impl PipeObserver for NoObs {
    const ENABLED: bool = false;
}

/// The full simulator observer: always-on metrics plus an optional
/// pipeline lifecycle trace ring.
#[derive(Debug, Clone, Default)]
pub struct SimObserver {
    /// Change-driven microarchitectural metrics.
    pub metrics: SimMetrics,
    /// Optional per-instruction lifecycle trace (enabled by
    /// `--trace-pipeline`-style flags; `None` keeps metrics-only runs
    /// from paying the ring-buffer cost).
    pub trace: Option<PipelineTrace>,
}

impl SimObserver {
    /// Metrics-only observer (no lifecycle trace ring).
    pub fn new() -> Self {
        Self::default()
    }

    /// Observer with a lifecycle trace ring attached.
    pub fn with_trace(trace: PipelineTrace) -> Self {
        SimObserver {
            metrics: SimMetrics::default(),
            trace: Some(trace),
        }
    }
}

impl PipeObserver for SimObserver {
    const ENABLED: bool = true;

    #[inline]
    fn on_fetch(&mut self, cycle: u64, pc: u64, wrong_path: bool) {
        self.metrics.fetched += 1;
        if wrong_path {
            self.metrics.wrong_path_fetched += 1;
        }
        if let Some(t) = &mut self.trace {
            t.push(TraceRec::new(
                cycle,
                0,
                TraceKind::Fetch,
                pc,
                0,
                wrong_path as u8,
            ));
        }
    }

    #[inline]
    fn on_rename(&mut self, cycle: u64, seq: u64, pc: u64, op: u8, wrong_path: bool) {
        self.metrics.renamed += 1;
        if let Some(t) = &mut self.trace {
            t.push(TraceRec::new(
                cycle,
                seq,
                TraceKind::Rename,
                pc,
                op,
                wrong_path as u8,
            ));
        }
    }

    #[inline]
    fn on_issue(&mut self, cycle: u64, seq: u64, op: u8) {
        self.metrics.issued += 1;
        if let Some(t) = &mut self.trace {
            t.push(TraceRec::new(cycle, seq, TraceKind::Issue, 0, op, 0));
        }
    }

    #[inline]
    fn on_complete(&mut self, cycle: u64, seq: u64) {
        self.metrics.completed += 1;
        if let Some(t) = &mut self.trace {
            t.push(TraceRec::new(cycle, seq, TraceKind::Complete, 0, 0, 0));
        }
    }

    #[inline]
    fn on_commit(&mut self, cycle: u64, seq: u64, op: u8) {
        self.metrics.committed += 1;
        if let Some(t) = &mut self.trace {
            t.push(TraceRec::new(cycle, seq, TraceKind::Commit, 0, op, 0));
        }
    }

    #[inline]
    fn on_squash(&mut self, cycle: u64, seq: u64) {
        self.metrics.squashed += 1;
        if let Some(t) = &mut self.trace {
            t.push(TraceRec::new(cycle, seq, TraceKind::Squash, 0, 0, 0));
        }
    }

    #[inline]
    fn on_reexecute(&mut self, cycle: u64, seq: u64, register: bool) {
        if register {
            self.metrics.reexec_register += 1;
        } else {
            self.metrics.reexec_memory += 1;
        }
        if let Some(t) = &mut self.trace {
            t.push(TraceRec::new(
                cycle,
                seq,
                TraceKind::Reexec,
                0,
                0,
                register as u8,
            ));
        }
    }

    #[inline]
    fn on_vp_alloc(&mut self, cycle: u64, seq: u64, class: u8, at_issue: bool) {
        if at_issue {
            self.metrics.vp_alloc_issue += 1;
        } else {
            self.metrics.vp_alloc_writeback += 1;
        }
        if let Some(t) = &mut self.trace {
            t.push(TraceRec::new(
                cycle,
                seq,
                TraceKind::VpAlloc,
                0,
                class,
                at_issue as u8,
            ));
        }
    }

    #[inline]
    fn on_vp_bind(&mut self, cycle: u64, seq: u64, class: u8) {
        self.metrics.vp_binds += 1;
        if let Some(t) = &mut self.trace {
            t.push(TraceRec::new(cycle, seq, TraceKind::VpBind, 0, class, 0));
        }
    }

    #[inline]
    fn on_nrr_denial(&mut self, class: u8, count: u64) {
        self.metrics.nrr_denials[usize::from(class) & 1] += count;
    }

    #[inline]
    fn on_wb_port_stall(&mut self, cycle: u64, seq: u64) {
        self.metrics.wb_port_stalls += 1;
        if let Some(t) = &mut self.trace {
            t.push(TraceRec::new(cycle, seq, TraceKind::WbStall, 0, 0, 0));
        }
    }

    #[inline]
    fn on_occupancy(&mut self, rob: usize, iq: usize, events: usize, sb: usize, mshr: usize) {
        self.metrics.active_cycles += 1;
        self.metrics.rob_occupancy.record(rob as u64);
        self.metrics.iq_occupancy.record(iq as u64);
        self.metrics.eventq_depth.record(events as u64);
        self.metrics.sb_occupancy.record(sb as u64);
        self.metrics.mshr_occupancy.record(mshr as u64);
    }

    #[inline]
    fn on_store_drain(&mut self, drained: u64, pending: usize) {
        self.metrics.store_drained += drained;
        if drained == 0 && pending > 0 {
            self.metrics.storm_run += 1;
        } else if self.metrics.storm_run > 0 {
            self.metrics.sb_retry_storm.record(self.metrics.storm_run);
            self.metrics.storm_run = 0;
        }
    }

    #[inline]
    fn on_idle_skip(&mut self, skipped: u64) {
        self.metrics.idle_skipped_cycles += skipped;
    }

    #[inline]
    fn reset(&mut self) {
        self.metrics.reset();
        if let Some(t) = &mut self.trace {
            t.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noobs_is_disabled_and_simobserver_enabled() {
        const { assert!(!NoObs::ENABLED) }
        const { assert!(SimObserver::ENABLED) }
    }

    #[test]
    fn storm_runs_close_on_successful_drain() {
        let mut o = SimObserver::new();
        o.on_store_drain(0, 3);
        o.on_store_drain(0, 3);
        o.on_store_drain(2, 1); // storm of length 2 closes here
        assert_eq!(o.metrics.sb_retry_storm.count(), 1);
        assert_eq!(o.metrics.sb_retry_storm.sum(), 2);
        assert_eq!(o.metrics.store_drained, 2);
        // An empty drain with an empty buffer is not a storm.
        o.on_store_drain(0, 0);
        assert_eq!(o.metrics.storm_run, 0);
    }

    #[test]
    fn reset_clears_metrics_and_trace() {
        let mut o = SimObserver::with_trace(PipelineTrace::new(8, Vec::new()));
        o.on_commit(5, 1, 0);
        o.on_nrr_denial(1, 7);
        o.reset();
        assert_eq!(o.metrics.committed, 0);
        assert_eq!(o.metrics.nrr_denials, [0, 0]);
        assert_eq!(o.trace.as_ref().unwrap().len(), 0);
    }
}
