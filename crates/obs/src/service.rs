//! Sweep-service metrics: the daemon-side counters `vpr-serve` exposes
//! through the same Prometheus text surface as the simulator metrics.
//!
//! The struct is a plain snapshot, not a live registry: the daemon keeps
//! atomics, snapshots them into a [`ServeMetrics`], and renders that
//! through [`crate::Registry`] — so the export path is identical to every
//! other artefact the workspace writes, and shard processes can report
//! their own snapshots for a deterministic [`ServeMetrics::merge`] at the
//! parent.

use crate::Registry;

/// One snapshot of the sweep service's health counters.
///
/// All fields are additive event counts except `queue_depth`, which is a
/// point-in-time gauge; [`ServeMetrics::merge`] sums everything (merging
/// shard snapshots taken at the same instant yields the fleet totals and
/// the fleet-wide queue depth).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeMetrics {
    /// Jobs accepted (journalled and acknowledged) over the process life.
    pub jobs_accepted: u64,
    /// Jobs that reached a terminal success.
    pub jobs_completed: u64,
    /// Jobs that exhausted their retry budget and degraded to a
    /// structured failure.
    pub jobs_failed: u64,
    /// Jobs currently queued or leased (gauge).
    pub queue_depth: u64,
    /// Leases reclaimed because their deadline passed (or an injected
    /// lease fault fired).
    pub lease_expiries: u64,
    /// Retry attempts scheduled (lease reclaims and worker deaths both
    /// land here).
    pub retries: u64,
    /// Warm passes avoided because another tenant's pass already
    /// deposited the artefact this job needed.
    pub dedup_hits: u64,
    /// Completed results served straight from the journal on replay,
    /// without recomputation.
    pub replay_hits: u64,
}

impl ServeMetrics {
    /// Sums `other` into `self`, field by field. Addition is commutative
    /// and associative, so merging shard snapshots in any order yields
    /// the same totals — the determinism contract the merge test pins.
    pub fn merge(&mut self, other: &ServeMetrics) {
        self.jobs_accepted += other.jobs_accepted;
        self.jobs_completed += other.jobs_completed;
        self.jobs_failed += other.jobs_failed;
        self.queue_depth += other.queue_depth;
        self.lease_expiries += other.lease_expiries;
        self.retries += other.retries;
        self.dedup_hits += other.dedup_hits;
        self.replay_hits += other.replay_hits;
    }

    /// Renders the snapshot into a [`Registry`] under the `vpr_serve_*`
    /// namespace (insertion order is fixed, so the Prometheus text is
    /// byte-stable for equal snapshots).
    pub fn registry(&self) -> Registry {
        let mut r = Registry::new();
        r.gauge(
            "vpr_serve_queue_depth",
            "Jobs currently queued or leased in the sweep service",
            self.queue_depth as f64,
        );
        r.counter(
            "vpr_serve_jobs_accepted_total",
            "Jobs accepted and journalled by the sweep service",
            self.jobs_accepted,
        );
        r.counter(
            "vpr_serve_jobs_completed_total",
            "Jobs completed successfully by the sweep service",
            self.jobs_completed,
        );
        r.counter(
            "vpr_serve_jobs_failed_total",
            "Jobs that exhausted their retry budget and degraded to a structured failure",
            self.jobs_failed,
        );
        r.counter(
            "vpr_serve_lease_expiries_total",
            "Worker leases reclaimed after their deadline passed",
            self.lease_expiries,
        );
        r.counter(
            "vpr_serve_retries_total",
            "Job retry attempts scheduled by the sweep service",
            self.retries,
        );
        r.counter(
            "vpr_serve_dedup_hits_total",
            "Warm passes avoided via the cross-tenant checkpoint cache",
            self.dedup_hits,
        );
        r.counter(
            "vpr_serve_replay_hits_total",
            "Completed results served from the journal on restart without recomputation",
            self.replay_hits,
        );
        r
    }

    /// Prometheus text exposition of the snapshot.
    pub fn to_prometheus(&self) -> String {
        self.registry().to_prometheus()
    }

    /// JSON object rendering of the snapshot.
    pub fn to_json_value(&self) -> String {
        self.registry().to_json_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(k: u64) -> ServeMetrics {
        ServeMetrics {
            jobs_accepted: 10 + k,
            jobs_completed: 7 + k,
            jobs_failed: k % 2,
            queue_depth: 3,
            lease_expiries: k,
            retries: 2 * k,
            dedup_hits: 5,
            replay_hits: k / 2,
        }
    }

    #[test]
    fn merge_is_order_independent() {
        let parts = [sample(1), sample(4), sample(9)];
        let mut forward = ServeMetrics::default();
        for p in &parts {
            forward.merge(p);
        }
        let mut backward = ServeMetrics::default();
        for p in parts.iter().rev() {
            backward.merge(p);
        }
        assert_eq!(forward, backward);
        // And the rendered surfaces are byte-identical, not just the
        // struct: this is what "determinism-safe merge" means for the
        // scrape endpoint.
        assert_eq!(forward.to_prometheus(), backward.to_prometheus());
        assert_eq!(forward.to_json_value(), backward.to_json_value());
    }

    #[test]
    fn prometheus_surface_has_the_contracted_names() {
        let text = sample(2).to_prometheus();
        for name in [
            "vpr_serve_queue_depth",
            "vpr_serve_lease_expiries_total",
            "vpr_serve_retries_total",
            "vpr_serve_dedup_hits_total",
        ] {
            assert!(
                text.contains(&format!("# TYPE {name} ")),
                "missing {name} in:\n{text}"
            );
        }
        assert!(text.contains("vpr_serve_lease_expiries_total 2\n"));
        assert!(text.contains("vpr_serve_retries_total 4\n"));
        assert!(text.contains("vpr_serve_dedup_hits_total 5\n"));
        assert!(text.contains("vpr_serve_queue_depth 3\n"));
    }
}
