//! Rate-limited stderr progress reporting for long sweeps.
//!
//! A [`Progress`] is shared by reference across sweep worker threads;
//! each job calls [`Progress::point_done`] once. Updates are throttled
//! (at most one line per 200 ms, except the final one) and the reporter
//! is inert unless explicitly enabled — the bench harness enables it
//! only when stderr is a terminal, so CI logs and redirected runs stay
//! clean and test output stays byte-stable.

use std::io::{IsTerminal, Write};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Minimum milliseconds between progress lines.
const THROTTLE_MS: u64 = 200;

/// Shared, thread-safe sweep progress reporter.
#[derive(Debug)]
pub struct Progress {
    enabled: bool,
    total: usize,
    done: AtomicUsize,
    start: Instant,
    /// Milliseconds since `start` of the last emitted line.
    last_ms: AtomicU64,
}

impl Progress {
    /// A reporter for `total` points. When `enabled` is false every call
    /// is a cheap no-op (one atomic increment).
    pub fn new(total: usize, enabled: bool) -> Self {
        Progress {
            enabled,
            total,
            done: AtomicUsize::new(0),
            start: Instant::now(),
            last_ms: AtomicU64::new(0),
        }
    }

    /// True when stderr is attached to a terminal — the condition under
    /// which the harness enables progress output.
    pub fn stderr_is_tty() -> bool {
        std::io::stderr().is_terminal()
    }

    /// Points completed so far.
    pub fn done(&self) -> usize {
        self.done.load(Ordering::Relaxed)
    }

    /// Marks one point complete, printing a rate-limited progress line
    /// (`[done/total] elapsed …s ETA …s`) to stderr when enabled. The
    /// final point always prints.
    pub fn point_done(&self) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if !self.enabled {
            return;
        }
        let now_ms = self.start.elapsed().as_millis() as u64;
        let finished = done >= self.total;
        if !finished {
            let last = self.last_ms.load(Ordering::Relaxed);
            if now_ms.saturating_sub(last) < THROTTLE_MS
                || self
                    .last_ms
                    .compare_exchange(last, now_ms, Ordering::Relaxed, Ordering::Relaxed)
                    .is_err()
            {
                return; // throttled, or another thread just printed
            }
        }
        let elapsed = now_ms as f64 / 1000.0;
        let eta = if done > 0 && !finished {
            elapsed / done as f64 * (self.total - done) as f64
        } else {
            0.0
        };
        let mut err = std::io::stderr().lock();
        let _ = if finished {
            writeln!(err, "[{done}/{}] sweep done in {elapsed:.1}s", self.total)
        } else {
            writeln!(
                err,
                "[{done}/{}] elapsed {elapsed:.1}s, ETA {eta:.1}s",
                self.total
            )
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_reporter_still_counts() {
        let p = Progress::new(3, false);
        p.point_done();
        p.point_done();
        assert_eq!(p.done(), 2);
    }

    #[test]
    fn counting_is_thread_safe() {
        let p = Progress::new(64, false);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..16 {
                        p.point_done();
                    }
                });
            }
        });
        assert_eq!(p.done(), 64);
    }
}
