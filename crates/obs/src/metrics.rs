//! The metrics registry: counters, gauges, log-bucketed histograms, and
//! the typed [`SimMetrics`] block the pipeline observer feeds.
//!
//! The hot path never touches strings or maps — [`SimMetrics`] is a plain
//! struct of integers and fixed-size [`Histogram`]s, updated by inlined
//! observer hooks. Naming happens once at export time, when
//! [`SimMetrics::export`] lays the values into a [`Registry`] whose
//! insertion order is fixed, so the JSON and Prometheus renderings are
//! byte-stable across runs and across `--jobs` values (merging is integer
//! addition in submission order).

use std::fmt::Write as _;

/// Number of histogram buckets: bucket 0 holds exact zeros, bucket `i`
/// (1 ≤ i < 16) holds values in `[2^(i-1), 2^i)`, and the last bucket
/// holds everything from `2^15` up.
const NBUCKETS: usize = 17;

/// A log2-bucketed histogram of `u64` samples.
///
/// Recording is branch-light (a `leading_zeros` and three adds); the
/// bucket layout is fixed so merging two histograms is element-wise
/// addition, which keeps parallel-sweep aggregation deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; NBUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; NBUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// Bucket index for a sample value.
    #[inline]
    fn bucket(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            (64 - v.leading_zeros() as usize).min(NBUCKETS - 1)
        }
    }

    /// Inclusive upper bound of bucket `i` (`u64::MAX` for the overflow
    /// bucket).
    fn upper(i: usize) -> u64 {
        match i {
            0 => 0,
            _ if i == NBUCKETS - 1 => u64::MAX,
            _ => (1u64 << i) - 1,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Element-wise merge of another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// JSON object rendering (count, sum, max, mean, non-empty buckets
    /// keyed by inclusive upper bound).
    pub fn to_json_value(&self) -> String {
        let mut s = format!(
            "{{\"count\": {}, \"sum\": {}, \"max\": {}, \"mean\": {}, \"buckets\": [",
            self.count,
            self.sum,
            self.max,
            json_f64(self.mean())
        );
        let mut first = true;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if !first {
                s.push_str(", ");
            }
            first = false;
            let le = if i == NBUCKETS - 1 {
                "\"+Inf\"".to_string()
            } else {
                format!("\"{}\"", Self::upper(i))
            };
            let _ = write!(s, "{{\"le\": {le}, \"n\": {n}}}");
        }
        s.push_str("]}");
        s
    }
}

/// Formats an `f64` for JSON (finite shortest-roundtrip; non-finite
/// becomes `null`, matching the bench crate's convention).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // Bare integers are valid JSON numbers, but keep a fractional
        // marker so consumers see a float-typed field consistently.
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".into()
    }
}

/// One exported metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic event count.
    Counter(u64),
    /// Point-in-time or derived value.
    Gauge(f64),
    /// Distribution snapshot.
    Histogram(Histogram),
}

/// An ordered collection of named metrics, ready for export.
///
/// Insertion order is preserved and is the render order for both the JSON
/// and the Prometheus text forms, so equal registries render to identical
/// bytes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    entries: Vec<(&'static str, &'static str, MetricValue)>,
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of metrics registered.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Registers a counter.
    pub fn counter(&mut self, name: &'static str, help: &'static str, v: u64) {
        self.entries.push((name, help, MetricValue::Counter(v)));
    }

    /// Registers a gauge.
    pub fn gauge(&mut self, name: &'static str, help: &'static str, v: f64) {
        self.entries.push((name, help, MetricValue::Gauge(v)));
    }

    /// Registers a histogram snapshot.
    pub fn histogram(&mut self, name: &'static str, help: &'static str, h: &Histogram) {
        self.entries.push((name, help, MetricValue::Histogram(*h)));
    }

    /// JSON object keyed by metric name, in insertion order.
    pub fn to_json_value(&self) -> String {
        let mut s = String::from("{");
        for (i, (name, _, v)) in self.entries.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let rendered = match v {
                MetricValue::Counter(c) => c.to_string(),
                MetricValue::Gauge(g) => json_f64(*g),
                MetricValue::Histogram(h) => h.to_json_value(),
            };
            let _ = write!(s, "\"{name}\": {rendered}");
        }
        s.push('}');
        s
    }

    /// Prometheus text exposition (one `# HELP`/`# TYPE` pair per metric;
    /// histograms render cumulative `_bucket{le=...}` series plus `_sum`
    /// and `_count`).
    pub fn to_prometheus(&self) -> String {
        let mut s = String::new();
        for (name, help, v) in &self.entries {
            let _ = writeln!(s, "# HELP {name} {help}");
            match v {
                MetricValue::Counter(c) => {
                    let _ = writeln!(s, "# TYPE {name} counter");
                    let _ = writeln!(s, "{name} {c}");
                }
                MetricValue::Gauge(g) => {
                    let _ = writeln!(s, "# TYPE {name} gauge");
                    let v = if g.is_finite() {
                        format!("{g}")
                    } else {
                        "NaN".into()
                    };
                    let _ = writeln!(s, "{name} {v}");
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(s, "# TYPE {name} histogram");
                    let mut cum = 0u64;
                    for i in 0..NBUCKETS {
                        cum += h.buckets[i];
                        if h.buckets[i] == 0 && i != NBUCKETS - 1 {
                            continue;
                        }
                        let le = if i == NBUCKETS - 1 {
                            "+Inf".to_string()
                        } else {
                            Histogram::upper(i).to_string()
                        };
                        let _ = writeln!(s, "{name}_bucket{{le=\"{le}\"}} {cum}");
                    }
                    let _ = writeln!(s, "{name}_sum {}", h.sum);
                    let _ = writeln!(s, "{name}_count {}", h.count);
                }
            }
        }
        s
    }
}

/// The pipeline's typed metric block — every field an observer hook
/// updates directly, with no name lookups on the hot path.
///
/// All counters cover the *measurement window only*: the bench harness
/// resets the observer when the window opens, mirroring `SimStats`
/// windowing, so a checkpoint-restored run and a freshly warmed run
/// produce identical blocks.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimMetrics {
    /// Instructions entering the fetch buffer (right or wrong path).
    pub fetched: u64,
    /// Wrong-path instructions fetched past unresolved branches.
    pub wrong_path_fetched: u64,
    /// Instructions renamed into the window.
    pub renamed: u64,
    /// Issue events (each execution of a re-executed instruction counts).
    pub issued: u64,
    /// Completion (write-back) events.
    pub completed: u64,
    /// Committed instructions.
    pub committed: u64,
    /// Squashed wrong-path instructions.
    pub squashed: u64,
    /// VP re-executions forced by physical-register scarcity.
    pub reexec_register: u64,
    /// Re-executions forced by memory-order violations.
    pub reexec_memory: u64,
    /// VP physical registers allocated at issue time.
    pub vp_alloc_issue: u64,
    /// VP physical registers allocated at write-back time.
    pub vp_alloc_writeback: u64,
    /// VP virtual→physical bindings installed in the physical map table.
    pub vp_binds: u64,
    /// NRR allocation-gate denials by register class (0 = int, 1 = fp).
    pub nrr_denials: [u64; 2],
    /// Completions deferred on exhausted register-file write ports.
    pub wb_port_stalls: u64,
    /// Stores drained from the store buffer to the cache.
    pub store_drained: u64,
    /// Cycles the governor proved quiescent and skipped unsampled.
    pub idle_skipped_cycles: u64,
    /// Cycles actually stepped (and occupancy-sampled).
    pub active_cycles: u64,
    /// Length of the store-buffer retry storm currently in progress
    /// (transient; flushed into [`Self::sb_retry_storm`]).
    pub storm_run: u64,
    /// ROB occupancy per active cycle.
    pub rob_occupancy: Histogram,
    /// Issue-queue occupancy per active cycle.
    pub iq_occupancy: Histogram,
    /// Event-queue depth per active cycle.
    pub eventq_depth: Histogram,
    /// Store-buffer occupancy per active cycle.
    pub sb_occupancy: Histogram,
    /// MSHR occupancy (in-flight fills) per active cycle.
    pub mshr_occupancy: Histogram,
    /// Store-buffer retry-storm lengths (consecutive drain-blocked
    /// cycles).
    pub sb_retry_storm: Histogram,
}

impl SimMetrics {
    /// Closes a retry storm left open at the end of a run so it is
    /// counted. Call before exporting or merging a finished run.
    pub fn flush_storm(&mut self) {
        if self.storm_run > 0 {
            let run = self.storm_run;
            self.sb_retry_storm.record(run);
            self.storm_run = 0;
        }
    }

    /// Resets everything to zero (measurement-window open).
    pub fn reset(&mut self) {
        *self = SimMetrics::default();
    }

    /// Adds a finished run's metrics into this accumulator (flushing its
    /// open storm first). Merging is commutative integer addition, so any
    /// submission-ordered reduction yields identical totals.
    pub fn merge(&mut self, mut other: SimMetrics) {
        other.flush_storm();
        self.fetched += other.fetched;
        self.wrong_path_fetched += other.wrong_path_fetched;
        self.renamed += other.renamed;
        self.issued += other.issued;
        self.completed += other.completed;
        self.committed += other.committed;
        self.squashed += other.squashed;
        self.reexec_register += other.reexec_register;
        self.reexec_memory += other.reexec_memory;
        self.vp_alloc_issue += other.vp_alloc_issue;
        self.vp_alloc_writeback += other.vp_alloc_writeback;
        self.vp_binds += other.vp_binds;
        self.nrr_denials[0] += other.nrr_denials[0];
        self.nrr_denials[1] += other.nrr_denials[1];
        self.wb_port_stalls += other.wb_port_stalls;
        self.store_drained += other.store_drained;
        self.idle_skipped_cycles += other.idle_skipped_cycles;
        self.active_cycles += other.active_cycles;
        self.rob_occupancy.merge(&other.rob_occupancy);
        self.iq_occupancy.merge(&other.iq_occupancy);
        self.eventq_depth.merge(&other.eventq_depth);
        self.sb_occupancy.merge(&other.sb_occupancy);
        self.mshr_occupancy.merge(&other.mshr_occupancy);
        self.sb_retry_storm.merge(&other.sb_retry_storm);
    }

    /// Lays the block out into a named [`Registry`] in the catalogue
    /// order documented in `docs/observability.md`.
    pub fn export(&self) -> Registry {
        let mut r = Registry::new();
        r.counter(
            "vpr_fetched_total",
            "instructions entering the fetch buffer",
            self.fetched,
        );
        r.counter(
            "vpr_wrong_path_fetched_total",
            "wrong-path instructions fetched past unresolved branches",
            self.wrong_path_fetched,
        );
        r.gauge(
            "vpr_wrong_path_fetch_fraction",
            "wrong-path share of all fetched instructions",
            if self.fetched == 0 {
                0.0
            } else {
                self.wrong_path_fetched as f64 / self.fetched as f64
            },
        );
        r.counter(
            "vpr_renamed_total",
            "instructions renamed into the window",
            self.renamed,
        );
        r.counter(
            "vpr_issued_total",
            "issue events including re-executions",
            self.issued,
        );
        r.counter(
            "vpr_completed_total",
            "completion (write-back) events",
            self.completed,
        );
        r.counter(
            "vpr_committed_total",
            "committed instructions",
            self.committed,
        );
        r.counter(
            "vpr_squashed_total",
            "squashed wrong-path instructions",
            self.squashed,
        );
        r.counter(
            "vpr_reexec_register_total",
            "VP re-executions forced by physical-register scarcity",
            self.reexec_register,
        );
        r.counter(
            "vpr_reexec_memory_total",
            "re-executions forced by memory-order violations",
            self.reexec_memory,
        );
        r.counter(
            "vpr_vp_alloc_issue_total",
            "VP physical registers allocated at issue time",
            self.vp_alloc_issue,
        );
        r.counter(
            "vpr_vp_alloc_writeback_total",
            "VP physical registers allocated at write-back time",
            self.vp_alloc_writeback,
        );
        r.counter(
            "vpr_vp_bind_total",
            "VP virtual-to-physical bindings installed",
            self.vp_binds,
        );
        r.counter(
            "vpr_nrr_denials_int_total",
            "NRR allocation-gate denials, integer class",
            self.nrr_denials[0],
        );
        r.counter(
            "vpr_nrr_denials_fp_total",
            "NRR allocation-gate denials, FP class",
            self.nrr_denials[1],
        );
        r.counter(
            "vpr_wb_port_stalls_total",
            "completions deferred on exhausted write ports",
            self.wb_port_stalls,
        );
        r.counter(
            "vpr_store_drained_total",
            "stores drained from the store buffer",
            self.store_drained,
        );
        r.counter(
            "vpr_active_cycles_total",
            "cycles actually stepped (occupancy-sampled)",
            self.active_cycles,
        );
        r.counter(
            "vpr_idle_skipped_cycles_total",
            "quiescent cycles skipped by the governor",
            self.idle_skipped_cycles,
        );
        r.histogram(
            "vpr_rob_occupancy",
            "ROB occupancy per active cycle",
            &self.rob_occupancy,
        );
        r.histogram(
            "vpr_iq_occupancy",
            "issue-queue occupancy per active cycle",
            &self.iq_occupancy,
        );
        r.histogram(
            "vpr_eventq_depth",
            "event-queue depth per active cycle",
            &self.eventq_depth,
        );
        r.histogram(
            "vpr_sb_occupancy",
            "store-buffer occupancy per active cycle",
            &self.sb_occupancy,
        );
        r.histogram(
            "vpr_mshr_occupancy",
            "MSHR occupancy (in-flight fills) per active cycle",
            &self.mshr_occupancy,
        );
        r.histogram(
            "vpr_sb_retry_storm_len",
            "store-buffer retry-storm lengths in cycles",
            &self.sb_retry_storm,
        );
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_log2() {
        assert_eq!(Histogram::bucket(0), 0);
        assert_eq!(Histogram::bucket(1), 1);
        assert_eq!(Histogram::bucket(2), 2);
        assert_eq!(Histogram::bucket(3), 2);
        assert_eq!(Histogram::bucket(4), 3);
        assert_eq!(Histogram::bucket(u64::MAX), NBUCKETS - 1);
    }

    #[test]
    fn histogram_merge_equals_combined_recording() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        let mut both = Histogram::default();
        for v in [0u64, 1, 5, 9, 1000] {
            a.record(v);
            both.record(v);
        }
        for v in [2u64, 7, 65535] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn merge_order_does_not_change_totals() {
        let mut x = SimMetrics {
            committed: 3,
            ..Default::default()
        };
        x.rob_occupancy.record(7);
        let mut y = SimMetrics {
            committed: 5,
            ..Default::default()
        };
        y.rob_occupancy.record(2);

        let mut ab = SimMetrics::default();
        ab.merge(x.clone());
        ab.merge(y.clone());
        let mut ba = SimMetrics::default();
        ba.merge(y);
        ba.merge(x);
        assert_eq!(ab, ba);
        assert_eq!(ab.export().to_json_value(), ba.export().to_json_value());
    }

    #[test]
    fn export_renders_json_and_prometheus() {
        let mut m = SimMetrics {
            fetched: 10,
            wrong_path_fetched: 2,
            ..Default::default()
        };
        m.iq_occupancy.record(3);
        let r = m.export();
        let json = r.to_json_value();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"vpr_fetched_total\": 10"));
        assert!(json.contains("\"vpr_wrong_path_fetch_fraction\": 0.2"));
        let prom = r.to_prometheus();
        assert!(prom.contains("# TYPE vpr_fetched_total counter"));
        assert!(prom.contains("vpr_iq_occupancy_bucket{le=\"+Inf\"} 1"));
        assert!(prom.contains("vpr_iq_occupancy_count 1"));
    }

    #[test]
    fn storm_flush_is_idempotent() {
        let mut m = SimMetrics {
            storm_run: 4,
            ..Default::default()
        };
        m.flush_storm();
        m.flush_storm();
        assert_eq!(m.sb_retry_storm.count(), 1);
        assert_eq!(m.sb_retry_storm.sum(), 4);
    }
}
