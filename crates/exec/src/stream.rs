//! [`ExecStream`]: adapts a [`Machine`] to the pipeline's `InstStream` +
//! `Resumable` contracts.
//!
//! The stream *is* the committed path: every [`DynInst`] it yields is an
//! architecturally-executed instruction from the functional emulator, so
//! the timing pipeline's committed count equals the emulator's executed
//! count by construction (pinned by `tests/exec_differential.rs`).

use crate::machine::{Machine, Step};
use crate::program::Program;
use std::sync::Arc;
use vpr_isa::{BranchInfo, DynInst, Inst, OpClass};
use vpr_snap::{Decoder, Encoder, Resumable};

/// What the stream does when the program halts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Terminate the stream (`next` returns `None`). Differential tests
    /// use this: the pipeline drains and commits exactly one program run.
    Once,
    /// Emit a wrap-around jump back to the entry point and reset the
    /// machine, making the stream infinite. Benchmarks, warm-up, and
    /// sampled simulation use this — it matches the synthetic
    /// generators' "traces are infinite" contract.
    Repeat,
}

/// An infinite-or-finite committed-path instruction stream over an
/// assembled program.
///
/// Implements `Iterator<Item = DynInst>` (and therefore `InstStream`),
/// plus [`Resumable`] so checkpointing and sampled simulation can save
/// and restore mid-run positions exactly as they do for synthetic traces.
#[derive(Debug, Clone)]
pub struct ExecStream {
    machine: Machine,
    mode: Mode,
    emitted: u64,
    iterations: u64,
}

impl ExecStream {
    /// Creates a stream over `program` with the given halt behaviour.
    pub fn new(program: Arc<Program>, mode: Mode) -> Self {
        ExecStream {
            machine: Machine::new(program),
            mode,
            emitted: 0,
            iterations: 0,
        }
    }

    /// Instructions emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Completed program iterations (only grows in [`Mode::Repeat`]).
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// The underlying machine (for architectural-state assertions in
    /// differential tests).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Skips `n` instructions without yielding them. Equivalent to — and
    /// tested against — calling `next` `n` times and discarding the
    /// results; used by functional warming in sampled simulation.
    pub fn fast_forward(&mut self, n: u64) {
        for _ in 0..n {
            if self.next().is_none() {
                break;
            }
        }
    }
}

impl Iterator for ExecStream {
    type Item = DynInst;

    fn next(&mut self) -> Option<DynInst> {
        match self.machine.step() {
            Step::Exec(di) => {
                self.emitted += 1;
                Some(di)
            }
            Step::Halted => match self.mode {
                Mode::Once => None,
                Mode::Repeat => {
                    // Emit a wrap-around jump from the halt site back to
                    // the entry so consecutive stream entries keep the
                    // `prev.next_pc() == cur.pc()` continuity invariant,
                    // then restart the machine for the next iteration.
                    let halt_pc = self.machine.halt_pc();
                    let entry = self.machine.program().entry;
                    self.machine.reset();
                    self.iterations += 1;
                    self.emitted += 1;
                    Some(
                        DynInst::new(halt_pc, Inst::new(OpClass::BranchUncond)).with_branch(
                            BranchInfo {
                                taken: true,
                                next_pc: entry,
                            },
                        ),
                    )
                }
            },
        }
    }
}

impl Resumable for ExecStream {
    fn save_state(&self, enc: &mut Encoder) {
        self.machine.save_into(enc);
        enc.put_u8(match self.mode {
            Mode::Once => 0,
            Mode::Repeat => 1,
        });
        enc.put_u64(self.emitted);
        enc.put_u64(self.iterations);
    }

    fn restore_state(&mut self, dec: &mut Decoder<'_>) {
        self.machine.restore_from(dec);
        self.mode = match dec.take_u8() {
            0 => Mode::Once,
            1 => Mode::Repeat,
            m => panic!("corrupt ExecStream snapshot: unknown mode {m}"),
        };
        self.emitted = dec.take_u64();
        self.iterations = dec.take_u64();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    const LOOPY: &str = "    li t0, 4\nloop:\n    addi t0, t0, -1\n    slli t1, t0, 3\n    sd t0, 0x100(t1)\n    bnez t0, loop\n    halt\n";

    fn stream(mode: Mode) -> ExecStream {
        ExecStream::new(Arc::new(assemble(LOOPY).unwrap()), mode)
    }

    #[test]
    fn once_mode_terminates_with_emitted_equal_to_executed() {
        let mut s = stream(Mode::Once);
        let insts: Vec<_> = s.by_ref().collect();
        assert_eq!(insts.len() as u64, s.emitted());
        assert_eq!(s.emitted(), s.machine().executed());
        assert!(s.machine().halted());
    }

    #[test]
    fn repeat_mode_wraps_with_continuity() {
        let mut s = stream(Mode::Repeat);
        let mut prev: Option<DynInst> = None;
        for _ in 0..100 {
            let di = s.next().expect("repeat stream is infinite");
            if let Some(p) = prev {
                assert_eq!(p.next_pc(), di.pc(), "continuity broken at wrap");
            }
            prev = Some(di);
        }
        assert!(s.iterations() >= 2);
    }

    #[test]
    fn fast_forward_equals_replay() {
        let mut a = stream(Mode::Repeat);
        let mut b = stream(Mode::Repeat);
        a.fast_forward(37);
        for _ in 0..37 {
            b.next();
        }
        assert_eq!(a.emitted(), b.emitted());
        assert_eq!(a.machine().arch_state(), b.machine().arch_state());
        for _ in 0..50 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn resumable_roundtrip_is_bit_identical() {
        let mut s = stream(Mode::Repeat);
        s.fast_forward(23);
        let mut enc = Encoder::new();
        s.save_state(&mut enc);
        let bytes = enc.into_bytes();

        let mut restored = stream(Mode::Repeat);
        restored.restore_state(&mut Decoder::new(&bytes));
        assert_eq!(restored.emitted(), s.emitted());
        for _ in 0..200 {
            assert_eq!(restored.next(), s.next());
        }
    }
}
