//! The functional emulator: executes an assembled [`Program`] with real
//! 64-bit register and memory values, producing one [`DynInst`] per
//! architecturally-executed instruction.
//!
//! The emulator is the *oracle* for the timing pipeline: it knows nothing
//! about cycles, renaming, or speculation — only architectural state. The
//! differential tests in `tests/exec_differential.rs` run the same program
//! through a pure [`Machine`] and through the full out-of-order pipeline
//! (via [`ExecStream`](crate::ExecStream)) and require bit-identical
//! [`ArchState`] at the end.

use crate::program::{Opcode, Program, STACK_TOP};
use std::collections::BTreeMap;
use std::sync::Arc;
use vpr_isa::{BranchInfo, DynInst, MemAccess};
use vpr_snap::{fnv1a, Decoder, Encoder, Snap};

/// Sparse byte-addressable memory, organised as 4 KiB pages in a
/// `BTreeMap` so iteration (checksums, snapshots) is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SparseMem {
    pages: BTreeMap<u64, Vec<u8>>,
}

const PAGE_SHIFT: u64 = 12;
const PAGE_SIZE: u64 = 1 << PAGE_SHIFT;

impl SparseMem {
    /// Reads `N` little-endian bytes at `addr` (page crossings are fine;
    /// untouched memory reads as zero).
    pub fn read<const N: usize>(&self, addr: u64) -> [u8; N] {
        let mut out = [0u8; N];
        for (i, byte) in out.iter_mut().enumerate() {
            let a = addr.wrapping_add(i as u64);
            if let Some(page) = self.pages.get(&(a >> PAGE_SHIFT)) {
                *byte = page[(a % PAGE_SIZE) as usize];
            }
        }
        out
    }

    /// Writes `bytes` at `addr`, allocating pages as needed.
    pub fn write(&mut self, addr: u64, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            let a = addr.wrapping_add(i as u64);
            let page = self
                .pages
                .entry(a >> PAGE_SHIFT)
                .or_insert_with(|| vec![0; PAGE_SIZE as usize]);
            page[(a % PAGE_SIZE) as usize] = b;
        }
    }

    /// FNV-1a checksum over all touched pages in address order.
    ///
    /// Pages that were allocated but hold only zeros still contribute, so
    /// the checksum pins the access pattern as well as the values; it is
    /// deterministic because `BTreeMap` iterates in key order.
    pub fn checksum(&self) -> u64 {
        let mut bytes = Vec::with_capacity(self.pages.len() * (8 + PAGE_SIZE as usize));
        for (page_no, page) in &self.pages {
            bytes.extend_from_slice(&page_no.to_le_bytes());
            bytes.extend_from_slice(page);
        }
        fnv1a(&bytes)
    }

    /// Number of touched 4 KiB pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }
}

impl Snap for SparseMem {
    fn save(&self, enc: &mut Encoder) {
        enc.put_usize(self.pages.len());
        for (page_no, page) in &self.pages {
            enc.put_u64(*page_no);
            page.save(enc);
        }
    }

    fn load(dec: &mut Decoder<'_>) -> Self {
        let n = dec.take_usize();
        let mut pages = BTreeMap::new();
        for _ in 0..n {
            let page_no = dec.take_u64();
            let page: Vec<u8> = Snap::load(dec);
            assert_eq!(
                page.len(),
                PAGE_SIZE as usize,
                "corrupt SparseMem snapshot: bad page size"
            );
            pages.insert(page_no, page);
        }
        SparseMem { pages }
    }
}

/// The full architectural state of a [`Machine`], for equality checks in
/// differential tests and goldens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchState {
    /// Program counter.
    pub pc: u64,
    /// Integer register file (`x0` is always zero).
    pub x: [u64; 32],
    /// FP register file, as raw `f64` bit patterns.
    pub f: [u64; 32],
    /// Instructions executed since construction (cumulative across
    /// [`Machine::reset`]).
    pub executed: u64,
    /// [`SparseMem::checksum`] of memory.
    pub mem_checksum: u64,
}

/// The result of one [`Machine::step`].
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    /// An instruction executed; here is its trace record.
    Exec(DynInst),
    /// The machine has halted (explicit `halt` or control fell off the
    /// end of the text segment). Further steps keep returning this.
    Halted,
}

/// A functional emulator over an assembled [`Program`].
///
/// Execution is fully deterministic: same program ⇒ same instruction
/// stream, same final state. The machine panics only on wild control flow
/// (a computed jump outside the text segment), which a well-formed
/// program cannot produce; all assembler-visible errors are caught at
/// assembly time.
#[derive(Debug, Clone)]
pub struct Machine {
    program: Arc<Program>,
    pc: u64,
    x: [u64; 32],
    f: [u64; 32],
    mem: SparseMem,
    executed: u64,
    halted: bool,
}

impl Machine {
    /// Creates a machine at the program entry with a fresh data image and
    /// `sp` = [`STACK_TOP`].
    pub fn new(program: Arc<Program>) -> Self {
        let mut m = Machine {
            program,
            pc: 0,
            x: [0; 32],
            f: [0; 32],
            mem: SparseMem::default(),
            executed: 0,
            halted: false,
        };
        m.reset();
        m
    }

    /// Rewinds to the entry point with fresh registers and memory.
    /// `executed` is *not* reset — it counts instructions across
    /// iterations, matching the stream's emitted count.
    pub fn reset(&mut self) {
        self.pc = self.program.entry;
        self.x = [0; 32];
        self.f = [0; 32];
        self.x[2] = STACK_TOP;
        self.mem = SparseMem::default();
        let data = self.program.data.clone();
        for (addr, bytes) in &data {
            self.mem.write(*addr, bytes);
        }
        self.halted = false;
    }

    /// The program being executed.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// Whether the machine has halted.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Instructions executed so far (cumulative across [`reset`](Self::reset)).
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// The pc the machine halted at: the `halt` instruction's own address,
    /// or the implicit-halt address one past the text segment. This is the
    /// address the last executed instruction's `next_pc` points to, so a
    /// wrap-around jump issued from here preserves stream continuity.
    pub fn halt_pc(&self) -> u64 {
        debug_assert!(self.halted, "halt_pc is only meaningful once halted");
        self.pc
    }

    /// Current architectural state (registers, pc, memory checksum).
    pub fn arch_state(&self) -> ArchState {
        ArchState {
            pc: self.pc,
            x: self.x,
            f: self.f,
            executed: self.executed,
            mem_checksum: self.mem.checksum(),
        }
    }

    /// Read-only view of memory.
    pub fn mem(&self) -> &SparseMem {
        &self.mem
    }

    /// Runs until halt, returning the number of instructions executed by
    /// this call. Pure-emulator runs in tests use this as the oracle.
    pub fn run_to_halt(&mut self) -> u64 {
        let start = self.executed;
        while let Step::Exec(_) = self.step() {}
        self.executed - start
    }

    fn set_x(&mut self, rd: u8, value: u64) {
        if rd != 0 {
            self.x[rd as usize] = value;
        }
    }

    /// Executes one instruction and returns its trace record, or
    /// [`Step::Halted`] if the machine is (or just became) halted.
    pub fn step(&mut self) -> Step {
        if self.halted {
            return Step::Halted;
        }
        if self.pc == self.program.text_end() {
            // Fell off the end of the text: implicit halt.
            self.halted = true;
            return Step::Halted;
        }
        let idx = self.program.inst_index(self.pc).unwrap_or_else(|| {
            panic!(
                "machine jumped outside the text segment: pc={:#x} (text ends at {:#x})",
                self.pc,
                self.program.text_end()
            )
        });
        let ai = self.program.insts[idx];
        let pc = self.pc;
        let mut next_pc = pc + 4;
        let mut dyn_inst = DynInst::new(pc, ai.tinst);

        let rs1 = self.x[ai.rs1 as usize];
        let rs2 = self.x[ai.rs2 as usize];
        let fs1 = f64::from_bits(self.f[ai.rs1 as usize]);
        let fs2 = f64::from_bits(self.f[ai.rs2 as usize]);

        match ai.op {
            Opcode::Add => self.set_x(ai.rd, rs1.wrapping_add(rs2)),
            Opcode::Sub => self.set_x(ai.rd, rs1.wrapping_sub(rs2)),
            Opcode::Mul => self.set_x(ai.rd, rs1.wrapping_mul(rs2)),
            Opcode::Div => {
                let v = if rs2 == 0 {
                    u64::MAX // RISC-V: division by zero yields -1.
                } else {
                    (rs1 as i64).wrapping_div(rs2 as i64) as u64
                };
                self.set_x(ai.rd, v);
            }
            Opcode::Rem => {
                let v = if rs2 == 0 {
                    rs1 // RISC-V: remainder by zero yields the dividend.
                } else {
                    (rs1 as i64).wrapping_rem(rs2 as i64) as u64
                };
                self.set_x(ai.rd, v);
            }
            Opcode::And => self.set_x(ai.rd, rs1 & rs2),
            Opcode::Or => self.set_x(ai.rd, rs1 | rs2),
            Opcode::Xor => self.set_x(ai.rd, rs1 ^ rs2),
            Opcode::Sll => self.set_x(ai.rd, rs1 << (rs2 & 63)),
            Opcode::Srl => self.set_x(ai.rd, rs1 >> (rs2 & 63)),
            Opcode::Sra => self.set_x(ai.rd, ((rs1 as i64) >> (rs2 & 63)) as u64),
            Opcode::Slt => self.set_x(ai.rd, ((rs1 as i64) < (rs2 as i64)) as u64),
            Opcode::Sltu => self.set_x(ai.rd, (rs1 < rs2) as u64),
            Opcode::Addi => self.set_x(ai.rd, rs1.wrapping_add(ai.imm as u64)),
            Opcode::Andi => self.set_x(ai.rd, rs1 & ai.imm as u64),
            Opcode::Ori => self.set_x(ai.rd, rs1 | ai.imm as u64),
            Opcode::Xori => self.set_x(ai.rd, rs1 ^ ai.imm as u64),
            Opcode::Slli => self.set_x(ai.rd, rs1 << (ai.imm & 63)),
            Opcode::Srli => self.set_x(ai.rd, rs1 >> (ai.imm & 63)),
            Opcode::Srai => self.set_x(ai.rd, ((rs1 as i64) >> (ai.imm & 63)) as u64),
            Opcode::Slti => self.set_x(ai.rd, ((rs1 as i64) < ai.imm) as u64),
            Opcode::Li => self.set_x(ai.rd, ai.imm as u64),
            Opcode::Ld => {
                let addr = rs1.wrapping_add(ai.imm as u64);
                let v = u64::from_le_bytes(self.mem.read::<8>(addr));
                self.set_x(ai.rd, v);
                dyn_inst = dyn_inst.with_mem(MemAccess { addr, size: 8 });
            }
            Opcode::Lw => {
                let addr = rs1.wrapping_add(ai.imm as u64);
                let v = i32::from_le_bytes(self.mem.read::<4>(addr)) as i64 as u64;
                self.set_x(ai.rd, v);
                dyn_inst = dyn_inst.with_mem(MemAccess { addr, size: 4 });
            }
            Opcode::Lb => {
                let addr = rs1.wrapping_add(ai.imm as u64);
                let v = self.mem.read::<1>(addr)[0] as i8 as i64 as u64;
                self.set_x(ai.rd, v);
                dyn_inst = dyn_inst.with_mem(MemAccess { addr, size: 1 });
            }
            Opcode::Lbu => {
                let addr = rs1.wrapping_add(ai.imm as u64);
                let v = self.mem.read::<1>(addr)[0] as u64;
                self.set_x(ai.rd, v);
                dyn_inst = dyn_inst.with_mem(MemAccess { addr, size: 1 });
            }
            Opcode::Fld => {
                let addr = rs1.wrapping_add(ai.imm as u64);
                self.f[ai.rd as usize] = u64::from_le_bytes(self.mem.read::<8>(addr));
                dyn_inst = dyn_inst.with_mem(MemAccess { addr, size: 8 });
            }
            Opcode::Sd => {
                let addr = rs1.wrapping_add(ai.imm as u64);
                self.mem.write(addr, &rs2.to_le_bytes());
                dyn_inst = dyn_inst.with_mem(MemAccess { addr, size: 8 });
            }
            Opcode::Sw => {
                let addr = rs1.wrapping_add(ai.imm as u64);
                self.mem.write(addr, &(rs2 as u32).to_le_bytes());
                dyn_inst = dyn_inst.with_mem(MemAccess { addr, size: 4 });
            }
            Opcode::Sb => {
                let addr = rs1.wrapping_add(ai.imm as u64);
                self.mem.write(addr, &[rs2 as u8]);
                dyn_inst = dyn_inst.with_mem(MemAccess { addr, size: 1 });
            }
            Opcode::Fsd => {
                let addr = rs1.wrapping_add(ai.imm as u64);
                let bits = self.f[ai.rs2 as usize];
                self.mem.write(addr, &bits.to_le_bytes());
                dyn_inst = dyn_inst.with_mem(MemAccess { addr, size: 8 });
            }
            Opcode::Beq | Opcode::Bne | Opcode::Blt | Opcode::Bge | Opcode::Bltu | Opcode::Bgeu => {
                let taken = match ai.op {
                    Opcode::Beq => rs1 == rs2,
                    Opcode::Bne => rs1 != rs2,
                    Opcode::Blt => (rs1 as i64) < (rs2 as i64),
                    Opcode::Bge => (rs1 as i64) >= (rs2 as i64),
                    Opcode::Bltu => rs1 < rs2,
                    _ => rs1 >= rs2,
                };
                if taken {
                    next_pc = ai.imm as u64;
                }
                dyn_inst = dyn_inst.with_branch(BranchInfo { taken, next_pc });
            }
            Opcode::J => {
                next_pc = ai.imm as u64;
                dyn_inst = dyn_inst.with_branch(BranchInfo {
                    taken: true,
                    next_pc,
                });
            }
            Opcode::Jr => {
                next_pc = rs1;
                dyn_inst = dyn_inst.with_branch(BranchInfo {
                    taken: true,
                    next_pc,
                });
            }
            Opcode::FaddD => self.f[ai.rd as usize] = (fs1 + fs2).to_bits(),
            Opcode::FsubD => self.f[ai.rd as usize] = (fs1 - fs2).to_bits(),
            Opcode::FmulD => self.f[ai.rd as usize] = (fs1 * fs2).to_bits(),
            Opcode::FdivD => self.f[ai.rd as usize] = (fs1 / fs2).to_bits(),
            Opcode::FsqrtD => self.f[ai.rd as usize] = fs1.sqrt().to_bits(),
            Opcode::FmvD => self.f[ai.rd as usize] = self.f[ai.rs1 as usize],
            Opcode::FcvtDL => self.f[ai.rd as usize] = ((rs1 as i64) as f64).to_bits(),
            Opcode::FcvtLD => self.set_x(ai.rd, (fs1 as i64) as u64),
            Opcode::FltD => self.set_x(ai.rd, (fs1 < fs2) as u64),
            Opcode::FleD => self.set_x(ai.rd, (fs1 <= fs2) as u64),
            Opcode::FeqD => self.set_x(ai.rd, (fs1 == fs2) as u64),
            Opcode::Nop => {}
            Opcode::Halt => {
                self.halted = true;
                return Step::Halted;
            }
        }

        self.pc = next_pc;
        self.executed += 1;
        Step::Exec(dyn_inst)
    }
}

impl Machine {
    /// Serialises the full machine state (pc, registers, memory,
    /// counters) plus the program fingerprint. The program itself is
    /// *not* serialised — restoring requires a machine built over the
    /// same program, which [`restore_from`](Self::restore_from) enforces.
    pub fn save_into(&self, enc: &mut Encoder) {
        enc.put_u64(self.program.fingerprint);
        enc.put_u64(self.pc);
        self.x.save(enc);
        self.f.save(enc);
        self.mem.save(enc);
        enc.put_u64(self.executed);
        enc.put_bool(self.halted);
    }

    /// Restores state previously written by [`save_into`](Self::save_into),
    /// asserting the snapshot was taken over the same program
    /// (fingerprint match).
    pub fn restore_from(&mut self, dec: &mut Decoder<'_>) {
        let fp = dec.take_u64();
        assert_eq!(
            fp, self.program.fingerprint,
            "snapshot was taken over a different program"
        );
        self.pc = dec.take_u64();
        self.x = Snap::load(dec);
        self.f = Snap::load(dec);
        self.mem = Snap::load(dec);
        self.executed = dec.take_u64();
        self.halted = dec.take_bool();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::program::{DATA_BASE, SCRATCH_BASE, TEXT_BASE};

    fn machine(src: &str) -> Machine {
        Machine::new(Arc::new(assemble(src).unwrap()))
    }

    #[test]
    fn arithmetic_and_halt() {
        let mut m = machine("    li t0, 40\n    addi t0, t0, 2\n    halt\n");
        let n = m.run_to_halt();
        assert_eq!(n, 2); // halt itself is not an executed instruction
        assert!(m.halted());
        assert_eq!(m.arch_state().x[5], 42);
    }

    #[test]
    fn x0_is_hardwired_zero() {
        let mut m = machine("    li zero, 99\n    add x0, x0, x0\n    halt\n");
        m.run_to_halt();
        assert_eq!(m.arch_state().x[0], 0);
    }

    #[test]
    fn loads_and_stores_round_trip_with_real_addresses() {
        let mut m = machine(
            "    li t0, 0x20000\n    li t1, -7\n    sd t1, 8(t0)\n    ld t2, 8(t0)\n    lw t3, 8(t0)\n    lb t4, 8(t0)\n    lbu t5, 8(t0)\n    halt\n",
        );
        let mut mems = Vec::new();
        while let Step::Exec(di) = m.step() {
            if let Some(mem) = di.mem() {
                mems.push((mem.addr, mem.size));
            }
        }
        assert_eq!(
            mems,
            vec![
                (SCRATCH_BASE + 8, 8),
                (SCRATCH_BASE + 8, 8),
                (SCRATCH_BASE + 8, 4),
                (SCRATCH_BASE + 8, 1),
                (SCRATCH_BASE + 8, 1),
            ]
        );
        let s = m.arch_state();
        assert_eq!(s.x[7] as i64, -7); // ld
        assert_eq!(s.x[28] as i64, -7); // lw sign-extends
        assert_eq!(s.x[29] as i64, -7); // lb sign-extends
        assert_eq!(s.x[30], 0xf9); // lbu zero-extends
    }

    #[test]
    fn branch_records_taken_and_target() {
        let mut m = machine("    li t0, 1\n    bnez t0, over\n    li t1, 111\nover:\n    halt\n");
        let mut branches = Vec::new();
        while let Step::Exec(di) = m.step() {
            if let Some(b) = di.branch() {
                branches.push(b);
            }
        }
        assert_eq!(branches.len(), 1);
        assert!(branches[0].taken);
        assert_eq!(branches[0].next_pc, TEXT_BASE + 12);
        assert_eq!(m.arch_state().x[6], 0); // skipped
    }

    #[test]
    fn stream_continuity_next_pc_links_each_pair() {
        let mut m = machine(
            "    li t0, 3\nloop:\n    addi t0, t0, -1\n    bnez t0, loop\n    li t1, 5\n    halt\n",
        );
        let mut prev: Option<DynInst> = None;
        while let Step::Exec(di) = m.step() {
            if let Some(p) = prev {
                assert_eq!(p.next_pc(), di.pc(), "stream continuity broken");
            }
            prev = Some(di);
        }
    }

    #[test]
    fn call_and_ret_nest() {
        let mut m = machine(
            "    li a0, 5\n    call double\n    mv s0, a0\n    halt\ndouble:\n    add a0, a0, a0\n    ret\n",
        );
        m.run_to_halt();
        assert_eq!(m.arch_state().x[8], 10);
    }

    #[test]
    fn fp_ops_and_conversions() {
        let mut m = machine(
            "    li t0, 9\n    fcvt.d.l f1, t0\n    fsqrt.d f2, f1\n    fcvt.l.d t1, f2\n    flt.d t2, f2, f1\n    halt\n",
        );
        m.run_to_halt();
        let s = m.arch_state();
        assert_eq!(f64::from_bits(s.f[2]), 3.0);
        assert_eq!(s.x[6], 3);
        assert_eq!(s.x[7], 1);
    }

    #[test]
    fn division_by_zero_follows_riscv_semantics() {
        let mut m = machine(
            "    li t0, 7\n    li t1, 0\n    div t2, t0, t1\n    rem t3, t0, t1\n    halt\n",
        );
        m.run_to_halt();
        let s = m.arch_state();
        assert_eq!(s.x[7], u64::MAX);
        assert_eq!(s.x[28], 7);
    }

    #[test]
    fn data_image_is_visible_and_reset_restores_it() {
        let mut m = machine(
            "    .data\nv: .dword 17\n    .text\n    la t0, v\n    ld t1, 0(t0)\n    addi t1, t1, 1\n    sd t1, 0(t0)\n    halt\n",
        );
        m.run_to_halt();
        assert_eq!(u64::from_le_bytes(m.mem().read::<8>(DATA_BASE)), 18);
        let executed = m.executed();
        m.reset();
        assert_eq!(
            u64::from_le_bytes(m.mem().read::<8>(DATA_BASE)),
            17,
            "reset must restore the pristine data image"
        );
        assert_eq!(m.executed(), executed, "executed is cumulative");
        assert!(!m.halted());
    }

    #[test]
    fn snapshot_restores_bit_identical_state() {
        let src = "    li t0, 10\nloop:\n    addi t0, t0, -1\n    slli t1, t0, 3\n    sd t0, 0(t1)\n    bnez t0, loop\n    halt\n";
        let mut m = machine(src);
        for _ in 0..7 {
            m.step();
        }
        let mut enc = Encoder::new();
        m.save_into(&mut enc);
        let bytes = enc.into_bytes();

        let mut m2 = machine(src);
        let mut dec = Decoder::new(&bytes);
        m2.restore_from(&mut dec);
        assert_eq!(m.arch_state(), m2.arch_state());
        // Both continue identically to halt.
        m.run_to_halt();
        m2.run_to_halt();
        assert_eq!(m.arch_state(), m2.arch_state());
    }

    #[test]
    #[should_panic(expected = "different program")]
    fn snapshot_rejects_wrong_program() {
        let m = machine("    li t0, 1\n    halt\n");
        let mut enc = Encoder::new();
        m.save_into(&mut enc);
        let bytes = enc.into_bytes();
        let mut other = machine("    li t0, 2\n    halt\n");
        other.restore_from(&mut Decoder::new(&bytes));
    }

    #[test]
    fn fall_off_end_is_implicit_halt() {
        let mut m = machine("    li t0, 1\n");
        assert_eq!(m.run_to_halt(), 1);
        assert!(m.halted());
    }
}
