//! Assembled programs: the static instruction list plus the initial data
//! image, ready for the [`Machine`](crate::Machine) to execute.

use vpr_isa::Inst;

/// First text address: instructions live at `TEXT_BASE + 4*i`.
pub const TEXT_BASE: u64 = 0x1000;

/// First data address: `.data` labels resolve from here.
pub const DATA_BASE: u64 = 0x1_0000;

/// Initial stack pointer (`sp`/`x2`); the stack grows downwards from here.
pub const STACK_TOP: u64 = 0x8_0000;

/// Base of the scratch segment the differential-test program generator
/// targets with its loads and stores. Nothing in the emulator privileges
/// this range — memory is sparse and fully writable — but sharing one
/// constant keeps generated programs and their assertions aligned.
pub const SCRATCH_BASE: u64 = 0x2_0000;

/// Concrete operation of one assembled instruction.
///
/// This is the *functional* opcode the emulator executes; the timing
/// model never sees it — it observes only the pre-computed
/// [`AsmInst::tinst`] classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Opcode {
    // Integer register-register.
    /// `add rd, rs1, rs2`
    Add,
    /// `sub rd, rs1, rs2`
    Sub,
    /// `mul rd, rs1, rs2`
    Mul,
    /// `div rd, rs1, rs2` (signed; division by zero yields -1)
    Div,
    /// `rem rd, rs1, rs2` (signed; remainder by zero yields rs1)
    Rem,
    /// `and rd, rs1, rs2`
    And,
    /// `or rd, rs1, rs2`
    Or,
    /// `xor rd, rs1, rs2`
    Xor,
    /// `sll rd, rs1, rs2` (shift amount = rs2 & 63)
    Sll,
    /// `srl rd, rs1, rs2`
    Srl,
    /// `sra rd, rs1, rs2`
    Sra,
    /// `slt rd, rs1, rs2` (signed compare)
    Slt,
    /// `sltu rd, rs1, rs2` (unsigned compare)
    Sltu,
    // Integer register-immediate.
    /// `addi rd, rs1, imm`
    Addi,
    /// `andi rd, rs1, imm`
    Andi,
    /// `ori rd, rs1, imm`
    Ori,
    /// `xori rd, rs1, imm`
    Xori,
    /// `slli rd, rs1, shamt`
    Slli,
    /// `srli rd, rs1, shamt`
    Srli,
    /// `srai rd, rs1, shamt`
    Srai,
    /// `slti rd, rs1, imm` (signed compare)
    Slti,
    /// `li rd, imm` — also what `la rd, label` and the first half of
    /// `call` assemble to (a single IntAlu in the timing model; immediate
    /// width is irrelevant to timing).
    Li,
    // Memory.
    /// `ld rd, imm(rs1)` — 8-byte load
    Ld,
    /// `lw rd, imm(rs1)` — 4-byte load, sign-extended
    Lw,
    /// `lb rd, imm(rs1)` — 1-byte load, sign-extended
    Lb,
    /// `lbu rd, imm(rs1)` — 1-byte load, zero-extended
    Lbu,
    /// `sd rs2, imm(rs1)` — 8-byte store
    Sd,
    /// `sw rs2, imm(rs1)` — 4-byte store
    Sw,
    /// `sb rs2, imm(rs1)` — 1-byte store
    Sb,
    /// `fld fd, imm(rs1)` — 8-byte FP load
    Fld,
    /// `fsd fs2, imm(rs1)` — 8-byte FP store
    Fsd,
    // Branches (imm = absolute target address).
    /// `beq rs1, rs2, label`
    Beq,
    /// `bne rs1, rs2, label`
    Bne,
    /// `blt rs1, rs2, label` (signed)
    Blt,
    /// `bge rs1, rs2, label` (signed)
    Bge,
    /// `bltu rs1, rs2, label` (unsigned)
    Bltu,
    /// `bgeu rs1, rs2, label` (unsigned)
    Bgeu,
    // Jumps.
    /// `j label` (imm = absolute target)
    J,
    /// `jr rs1` — indirect jump (also `ret` = `jr ra`)
    Jr,
    // Floating point (double precision).
    /// `fadd.d fd, fs1, fs2`
    FaddD,
    /// `fsub.d fd, fs1, fs2`
    FsubD,
    /// `fmul.d fd, fs1, fs2`
    FmulD,
    /// `fdiv.d fd, fs1, fs2`
    FdivD,
    /// `fsqrt.d fd, fs1`
    FsqrtD,
    /// `fmv.d fd, fs1`
    FmvD,
    /// `fcvt.d.l fd, rs1` — signed integer to double
    FcvtDL,
    /// `fcvt.l.d rd, fs1` — double to signed integer (saturating)
    FcvtLD,
    /// `flt.d rd, fs1, fs2` — 1 if fs1 < fs2 else 0
    FltD,
    /// `fle.d rd, fs1, fs2`
    FleD,
    /// `feq.d rd, fs1, fs2`
    FeqD,
    // Misc.
    /// `nop`
    Nop,
    /// `halt` — ends the run (the stream either terminates or wraps to
    /// the entry point, see [`Mode`](crate::Mode))
    Halt,
}

/// One assembled instruction: functional opcode, register indices, the
/// resolved immediate, and the pre-computed timing-model classification.
///
/// Register fields index the integer or FP file depending on the opcode;
/// unused fields are zero. Branch and jump targets are resolved to
/// absolute addresses in `imm` by the assembler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AsmInst {
    /// The functional operation.
    pub op: Opcode,
    /// Destination register index, where applicable.
    pub rd: u8,
    /// First source register index.
    pub rs1: u8,
    /// Second source register index.
    pub rs2: u8,
    /// Immediate / offset / resolved absolute target.
    pub imm: i64,
    /// What the timing pipeline sees for this instruction: its
    /// [`OpClass`](vpr_isa::OpClass) and logical register operands.
    pub tinst: Inst,
}

/// An assembled program: text, initial data image, and entry point.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Instructions, laid out at [`TEXT_BASE`]` + 4*i`.
    pub insts: Vec<AsmInst>,
    /// Initial data chunks `(address, bytes)`, applied at machine reset.
    pub data: Vec<(u64, Vec<u8>)>,
    /// Address of the first executed instruction (= [`TEXT_BASE`]).
    pub entry: u64,
    /// FNV-1a hash of the source text — the shape check
    /// [`ExecStream`](crate::ExecStream)'s `Resumable` impl uses to
    /// reject snapshots taken over a different program.
    pub fingerprint: u64,
}

impl Program {
    /// Address one past the last instruction; execution reaching it is an
    /// implicit halt (falling off the end of the text).
    pub fn text_end(&self) -> u64 {
        TEXT_BASE + 4 * self.insts.len() as u64
    }

    /// The instruction index for `pc`, or `None` when `pc` lies outside
    /// the text segment (including the implicit-halt address).
    pub fn inst_index(&self, pc: u64) -> Option<usize> {
        if pc < TEXT_BASE || !pc.is_multiple_of(4) {
            return None;
        }
        let idx = ((pc - TEXT_BASE) / 4) as usize;
        (idx < self.insts.len()).then_some(idx)
    }
}
