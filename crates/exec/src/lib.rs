//! `vpr-exec`: the real-program frontend.
//!
//! Everything upstream of this crate feeds the timing pipeline with
//! *synthetic* instruction streams shaped by statistical models
//! (`vpr-trace`). This crate feeds it *programs*: a minimal RISC-V-style
//! ISA, a two-pass assembler ([`assemble`]), and a functional emulator
//! ([`Machine`]) whose architecturally-committed instruction stream
//! ([`ExecStream`]) implements the same `InstStream` + `Resumable`
//! contracts the synthetic generators do — so all four rename schemes,
//! checkpointing, sampled simulation, and cross-NRR shared passes work
//! on real control flow and real live ranges without modification.
//!
//! The crate is deliberately *functional-first*: the [`Machine`] computes
//! real 64-bit register and memory values, and the differential tests
//! (`tests/exec_differential.rs`) use it as an oracle — the pipeline must
//! commit exactly the instructions the pure emulator executes, leaving
//! architectural state bit-identical.
//!
//! See `docs/isa.md` for the ISA table, assembler syntax, and memory
//! model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod machine;
pub mod program;
pub mod stream;

pub use asm::{assemble, AsmError, AsmErrorKind};
pub use machine::{ArchState, Machine, SparseMem, Step};
pub use program::{AsmInst, Opcode, Program, DATA_BASE, SCRATCH_BASE, STACK_TOP, TEXT_BASE};
pub use stream::{ExecStream, Mode};

use std::sync::{Arc, OnceLock};

/// The bundled benchmark programs under `asm/`, compiled into the binary
/// so benchmarks need no filesystem access at run time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AsmProgram {
    /// 12×12 dense double-precision matrix multiply (FP-heavy, regular
    /// loads with long FP live ranges).
    Matmul,
    /// Recursive quicksort over 64 pseudo-random `u64`s (data-dependent
    /// branches, real call stack).
    Quicksort,
    /// Sieve of Eratosthenes to 2000 with byte flags (byte stores,
    /// highly-biased inner branches).
    PrimeSieve,
    /// 4 KiB forward copy plus a stride-64 gather pass (load/store
    /// dominated, two distinct access patterns).
    MemcpyStride,
    /// Naively recursive `fib(14)` (call/return dominated, deep stack
    /// traffic).
    Fib,
}

impl AsmProgram {
    /// Every bundled program, in catalog order.
    pub const ALL: [AsmProgram; 5] = [
        AsmProgram::Matmul,
        AsmProgram::Quicksort,
        AsmProgram::PrimeSieve,
        AsmProgram::MemcpyStride,
        AsmProgram::Fib,
    ];

    /// The short name used in `--workload asm:<name>` and file names.
    pub fn name(&self) -> &'static str {
        match self {
            AsmProgram::Matmul => "matmul",
            AsmProgram::Quicksort => "quicksort",
            AsmProgram::PrimeSieve => "prime_sieve",
            AsmProgram::MemcpyStride => "memcpy_stride",
            AsmProgram::Fib => "fib",
        }
    }

    /// Parses a catalog name (as produced by [`name`](Self::name)).
    pub fn parse(name: &str) -> Option<AsmProgram> {
        AsmProgram::ALL.iter().copied().find(|p| p.name() == name)
    }

    /// The program's assembly source text.
    pub fn source(&self) -> &'static str {
        match self {
            AsmProgram::Matmul => include_str!("../../../asm/matmul.s"),
            AsmProgram::Quicksort => include_str!("../../../asm/quicksort.s"),
            AsmProgram::PrimeSieve => include_str!("../../../asm/prime_sieve.s"),
            AsmProgram::MemcpyStride => include_str!("../../../asm/memcpy_stride.s"),
            AsmProgram::Fib => include_str!("../../../asm/fib.s"),
        }
    }

    /// The assembled program, cached after the first call (the bundled
    /// sources are pinned by tests, so assembly cannot fail).
    pub fn program(&self) -> Arc<Program> {
        static CACHE: OnceLock<[Arc<Program>; 5]> = OnceLock::new();
        let cache = CACHE.get_or_init(|| {
            AsmProgram::ALL.map(|p| {
                Arc::new(assemble(p.source()).unwrap_or_else(|e| {
                    panic!("bundled program {} failed to assemble: {e}", p.name())
                }))
            })
        });
        let idx = AsmProgram::ALL
            .iter()
            .position(|p| p == self)
            .expect("in ALL");
        Arc::clone(&cache[idx])
    }

    /// A fresh instruction stream over this program.
    pub fn stream(&self, mode: Mode) -> ExecStream {
        ExecStream::new(self.program(), mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_bundled_programs_assemble() {
        for p in AsmProgram::ALL {
            let prog = p.program();
            assert!(!prog.insts.is_empty(), "{} is empty", p.name());
        }
    }

    #[test]
    fn names_round_trip() {
        for p in AsmProgram::ALL {
            assert_eq!(AsmProgram::parse(p.name()), Some(p));
        }
        assert_eq!(AsmProgram::parse("nope"), None);
    }

    #[test]
    fn all_bundled_programs_halt_with_plausible_lengths() {
        for p in AsmProgram::ALL {
            let mut m = Machine::new(p.program());
            let n = m.run_to_halt();
            assert!(
                (1_000..5_000_000).contains(&n),
                "{} ran {n} instructions — outside the expected envelope",
                p.name()
            );
        }
    }

    #[test]
    fn streams_preserve_continuity_across_a_wrap() {
        for p in AsmProgram::ALL {
            let mut s = p.stream(Mode::Repeat);
            // One full iteration plus a bit, checking every link.
            let mut m = Machine::new(p.program());
            let len = m.run_to_halt();
            let mut prev: Option<vpr_isa::DynInst> = None;
            for _ in 0..(len + 50) {
                let di = s.next().expect("repeat stream is infinite");
                if let Some(pr) = prev {
                    assert_eq!(pr.next_pc(), di.pc(), "{}: continuity broken", p.name());
                }
                prev = Some(di);
            }
            assert_eq!(s.iterations(), 1, "{}", p.name());
        }
    }
}
