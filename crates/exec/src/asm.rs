//! Two-pass assembler for the `vpr` RISC-V-style ISA.
//!
//! Pass 1 walks the source once to place labels (text instructions occupy
//! 4 bytes each, `call` expands to 8; data directives advance the data
//! cursor); pass 2 encodes every instruction with all labels known, so
//! forward references cost nothing. All failures are **typed errors
//! carrying the source line number** ([`AsmError`]) — the assembler never
//! panics on malformed input (pinned by the corrupt-source corpus in
//! `tests/assembler_errors.rs`).
//!
//! Syntax summary (full table in `docs/isa.md`):
//!
//! ```text
//! # comment
//! label:                 # labels may share a line with code
//!     .data
//! vec: .dword 1, 2, -3   # also .word, .byte, .double, .space N, .align N
//!     .text
//!     la   t0, vec
//!     ld   t1, 8(t0)
//!     addi t1, t1, 42
//!     beqz t1, done
//!     call helper
//! done:
//!     halt
//! ```

use crate::program::{AsmInst, Opcode, Program, DATA_BASE, TEXT_BASE};
use std::collections::HashMap;
use std::fmt;
use vpr_isa::{Inst, LogicalReg, OpClass};

/// Upper bound on the assembled data image, to keep corrupt or
/// adversarial `.space` directives from ballooning memory.
pub const MAX_DATA_BYTES: u64 = 1 << 20;

/// An assembly failure: what went wrong and on which source line
/// (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line the error was detected on.
    pub line: usize,
    /// What went wrong.
    pub kind: AsmErrorKind,
}

/// The failure classes the assembler reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmErrorKind {
    /// The mnemonic is not part of the ISA.
    UnknownMnemonic(String),
    /// The directive is not recognised.
    UnknownDirective(String),
    /// A directive appeared in the wrong section (e.g. `.dword` in
    /// `.text`) or an instruction appeared in `.data`.
    MisplacedItem(String),
    /// The same label was defined twice.
    DuplicateLabel(String),
    /// A referenced label was never defined.
    UndefinedLabel(String),
    /// A label name is not `[A-Za-z_.][A-Za-z0-9_.]*`.
    BadLabelName(String),
    /// An immediate lies outside the mnemonic's encodable range.
    ImmediateOutOfRange {
        /// The mnemonic whose range was violated.
        mnemonic: String,
        /// The offending value.
        value: i64,
        /// Smallest accepted value.
        min: i64,
        /// Largest accepted value.
        max: i64,
    },
    /// A register operand is not a valid register name.
    BadRegister(String),
    /// An operand could not be parsed (bad number, malformed `imm(reg)`
    /// form, …).
    BadOperand(String),
    /// The mnemonic got the wrong number of operands.
    WrongOperandCount {
        /// The mnemonic.
        mnemonic: String,
        /// Operands the mnemonic requires.
        expected: usize,
        /// Operands found on the line.
        found: usize,
    },
    /// The program has no instructions.
    EmptyProgram,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.kind)
    }
}

impl fmt::Display for AsmErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmErrorKind::UnknownMnemonic(m) => write!(f, "unknown mnemonic `{m}`"),
            AsmErrorKind::UnknownDirective(d) => write!(f, "unknown directive `{d}`"),
            AsmErrorKind::MisplacedItem(what) => write!(f, "{what}"),
            AsmErrorKind::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            AsmErrorKind::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmErrorKind::BadLabelName(l) => write!(f, "bad label name `{l}`"),
            AsmErrorKind::ImmediateOutOfRange {
                mnemonic,
                value,
                min,
                max,
            } => write!(
                f,
                "immediate {value} out of range for `{mnemonic}` (allowed {min}..={max})"
            ),
            AsmErrorKind::BadRegister(r) => write!(f, "bad register `{r}`"),
            AsmErrorKind::BadOperand(o) => write!(f, "bad operand `{o}`"),
            AsmErrorKind::WrongOperandCount {
                mnemonic,
                expected,
                found,
            } => write!(f, "`{mnemonic}` takes {expected} operand(s), found {found}"),
            AsmErrorKind::EmptyProgram => write!(f, "program has no instructions"),
        }
    }
}

impl std::error::Error for AsmError {}

// ----------------------------------------------------------------------
// Lexing helpers
// ----------------------------------------------------------------------

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

fn is_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == '.' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
}

/// Splits leading `label:` definitions off a line, returning the labels
/// and the remaining statement.
fn split_labels(mut rest: &str) -> (Vec<&str>, &str) {
    let mut labels = Vec::new();
    loop {
        rest = rest.trim_start();
        let Some(colon) = rest.find(':') else { break };
        let candidate = rest[..colon].trim();
        // Only take it as a label when the prefix looks like a name (a
        // colon inside an operand list never does: operands contain
        // commas or parentheses before any colon).
        if candidate.is_empty()
            || candidate.contains(char::is_whitespace)
            || candidate.contains(',')
            || candidate.contains('(')
        {
            break;
        }
        labels.push(candidate);
        rest = &rest[colon + 1..];
    }
    (labels, rest.trim())
}

fn parse_int(tok: &str) -> Option<i64> {
    let tok = tok.trim();
    let (neg, body) = match tok.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, tok),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()?
    } else {
        body.parse::<i64>().ok()?
    };
    Some(if neg { v.wrapping_neg() } else { v })
}

fn int_reg(tok: &str) -> Option<u8> {
    let named = |n: u8| Some(n);
    match tok {
        "zero" => named(0),
        "ra" => named(1),
        "sp" => named(2),
        "gp" => named(3),
        "tp" => named(4),
        "fp" => named(8),
        _ => {
            let (prefix, digits) = tok.split_at(tok.len().min(1));
            let n: u8 = digits.parse().ok()?;
            match prefix {
                "x" if n <= 31 => Some(n),
                "t" if n <= 2 => Some(5 + n),
                "t" if (3..=6).contains(&n) => Some(28 + n - 3),
                "s" if n <= 1 => Some(8 + n),
                "s" if (2..=11).contains(&n) => Some(18 + n - 2),
                "a" if n <= 7 => Some(10 + n),
                _ => None,
            }
        }
    }
}

fn fp_reg(tok: &str) -> Option<u8> {
    let digits = tok.strip_prefix('f')?;
    let n: u8 = digits.parse().ok()?;
    (n <= 31).then_some(n)
}

// ----------------------------------------------------------------------
// The assembler
// ----------------------------------------------------------------------

/// How many 4-byte instruction slots a mnemonic expands to.
fn slots(mnemonic: &str) -> u64 {
    if mnemonic == "call" {
        2
    } else {
        1
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Section {
    Text,
    Data,
}

struct Assembler<'a> {
    labels: HashMap<&'a str, u64>,
}

/// Assembles `src` into a [`Program`].
///
/// # Errors
///
/// Returns the first [`AsmError`] encountered, with its 1-based source
/// line. The assembler never panics on malformed input.
pub fn assemble(src: &str) -> Result<Program, AsmError> {
    let mut asm = Assembler {
        labels: HashMap::new(),
    };
    asm.place_labels(src)?;
    asm.encode(src)
}

impl<'a> Assembler<'a> {
    /// Pass 1: record every label's address.
    fn place_labels(&mut self, src: &'a str) -> Result<(), AsmError> {
        let mut section = Section::Text;
        let mut text_pc = TEXT_BASE;
        let mut data_addr = DATA_BASE;
        for (idx, raw) in src.lines().enumerate() {
            let line = idx + 1;
            let err = |kind| AsmError { line, kind };
            let (labels, stmt) = split_labels(strip_comment(raw));
            for label in labels {
                if !is_label_name(label) {
                    return Err(err(AsmErrorKind::BadLabelName(label.to_string())));
                }
                let addr = match section {
                    Section::Text => text_pc,
                    Section::Data => data_addr,
                };
                if self.labels.insert(label, addr).is_some() {
                    return Err(err(AsmErrorKind::DuplicateLabel(label.to_string())));
                }
            }
            if stmt.is_empty() {
                continue;
            }
            let (head, tail) = head_tail(stmt);
            if let Some(directive) = head.strip_prefix('.') {
                match directive {
                    "text" => section = Section::Text,
                    "data" => section = Section::Data,
                    _ => {
                        if section != Section::Data {
                            return Err(err(AsmErrorKind::MisplacedItem(format!(
                                "directive `{head}` is only allowed in .data"
                            ))));
                        }
                        data_addr += data_size(directive, tail, data_addr)
                            .map_err(|kind| AsmError { line, kind })?;
                        if data_addr - DATA_BASE > MAX_DATA_BYTES {
                            return Err(err(AsmErrorKind::ImmediateOutOfRange {
                                mnemonic: format!(".{directive}"),
                                value: (data_addr - DATA_BASE) as i64,
                                min: 0,
                                max: MAX_DATA_BYTES as i64,
                            }));
                        }
                    }
                }
            } else {
                if section != Section::Text {
                    return Err(err(AsmErrorKind::MisplacedItem(format!(
                        "instruction `{head}` is only allowed in .text"
                    ))));
                }
                // Unknown mnemonics are sized as one slot here and
                // reported (with the right line) by pass 2.
                text_pc += 4 * slots(head);
            }
        }
        Ok(())
    }

    /// Pass 2: encode instructions and the data image. Section placement
    /// was already validated by pass 1, so only content errors remain.
    fn encode(&self, src: &'a str) -> Result<Program, AsmError> {
        let mut insts: Vec<AsmInst> = Vec::new();
        let mut image: Vec<u8> = Vec::new();
        for (idx, raw) in src.lines().enumerate() {
            let line = idx + 1;
            let (_, stmt) = split_labels(strip_comment(raw));
            if stmt.is_empty() {
                continue;
            }
            let (head, tail) = head_tail(stmt);
            if let Some(directive) = head.strip_prefix('.') {
                match directive {
                    "text" | "data" => {}
                    _ => self
                        .encode_data(directive, tail, &mut image)
                        .map_err(|kind| AsmError { line, kind })?,
                }
            } else {
                let pc = TEXT_BASE + 4 * insts.len() as u64;
                let expanded = self
                    .encode_inst(head, tail, pc)
                    .map_err(|kind| AsmError { line, kind })?;
                insts.extend(expanded);
            }
        }
        if insts.is_empty() {
            return Err(AsmError {
                line: src.lines().count().max(1),
                kind: AsmErrorKind::EmptyProgram,
            });
        }
        let data = if image.is_empty() {
            Vec::new()
        } else {
            vec![(DATA_BASE, image)]
        };
        Ok(Program {
            insts,
            data,
            entry: TEXT_BASE,
            fingerprint: vpr_snap::fnv1a(src.as_bytes()),
        })
    }

    fn lookup(&self, label: &str) -> Result<u64, AsmErrorKind> {
        self.labels
            .get(label)
            .copied()
            .ok_or_else(|| AsmErrorKind::UndefinedLabel(label.to_string()))
    }

    /// An immediate operand: a literal or a label reference.
    fn imm_or_label(&self, tok: &str) -> Result<i64, AsmErrorKind> {
        if let Some(v) = parse_int(tok) {
            return Ok(v);
        }
        if is_label_name(tok) {
            return Ok(self.lookup(tok)? as i64);
        }
        Err(AsmErrorKind::BadOperand(tok.to_string()))
    }

    fn encode_data(
        &self,
        directive: &str,
        tail: &str,
        image: &mut Vec<u8>,
    ) -> Result<(), AsmErrorKind> {
        let values = || -> Result<Vec<&str>, AsmErrorKind> {
            let vs: Vec<&str> = tail.split(',').map(str::trim).collect();
            if vs.iter().any(|v| v.is_empty()) {
                return Err(AsmErrorKind::BadOperand(tail.to_string()));
            }
            Ok(vs)
        };
        match directive {
            "dword" => {
                for v in values()? {
                    let x = self.imm_or_label(v)?;
                    image.extend_from_slice(&(x as u64).to_le_bytes());
                }
            }
            "word" => {
                for v in values()? {
                    let x = self.imm_or_label(v)?;
                    check_range("word", x, i32::MIN as i64, u32::MAX as i64)?;
                    image.extend_from_slice(&(x as u32).to_le_bytes());
                }
            }
            "byte" => {
                for v in values()? {
                    let x = self.imm_or_label(v)?;
                    check_range("byte", x, i8::MIN as i64, u8::MAX as i64)?;
                    image.push(x as u8);
                }
            }
            "double" => {
                for v in values()? {
                    let x: f64 = v
                        .parse()
                        .map_err(|_| AsmErrorKind::BadOperand(v.to_string()))?;
                    image.extend_from_slice(&x.to_bits().to_le_bytes());
                }
            }
            "space" => {
                let n =
                    parse_int(tail).ok_or_else(|| AsmErrorKind::BadOperand(tail.to_string()))?;
                check_range("space", n, 0, MAX_DATA_BYTES as i64)?;
                image.resize(image.len() + n as usize, 0);
            }
            "align" => {
                let n =
                    parse_int(tail).ok_or_else(|| AsmErrorKind::BadOperand(tail.to_string()))?;
                check_range("align", n, 1, 4096)?;
                let n = n as usize;
                let pad = (n - image.len() % n) % n;
                image.resize(image.len() + pad, 0);
            }
            _ => return Err(AsmErrorKind::UnknownDirective(format!(".{directive}"))),
        }
        Ok(())
    }

    fn encode_inst(
        &self,
        mnemonic: &str,
        tail: &str,
        pc: u64,
    ) -> Result<Vec<AsmInst>, AsmErrorKind> {
        let ops: Vec<&str> = if tail.is_empty() {
            Vec::new()
        } else {
            tail.split(',').map(str::trim).collect()
        };
        let expect = |n: usize| -> Result<(), AsmErrorKind> {
            if ops.len() == n {
                Ok(())
            } else {
                Err(AsmErrorKind::WrongOperandCount {
                    mnemonic: mnemonic.to_string(),
                    expected: n,
                    found: ops.len(),
                })
            }
        };
        let ireg = |tok: &str| -> Result<u8, AsmErrorKind> {
            int_reg(tok).ok_or_else(|| AsmErrorKind::BadRegister(tok.to_string()))
        };
        let freg = |tok: &str| -> Result<u8, AsmErrorKind> {
            fp_reg(tok).ok_or_else(|| AsmErrorKind::BadRegister(tok.to_string()))
        };
        // `imm(reg)` memory operand.
        let mem_operand = |tok: &str| -> Result<(i64, u8), AsmErrorKind> {
            let open = tok
                .find('(')
                .ok_or_else(|| AsmErrorKind::BadOperand(tok.to_string()))?;
            let close = tok
                .strip_suffix(')')
                .ok_or_else(|| AsmErrorKind::BadOperand(tok.to_string()))?;
            let off_str = tok[..open].trim();
            let off = if off_str.is_empty() {
                0
            } else {
                parse_int(off_str).ok_or_else(|| AsmErrorKind::BadOperand(tok.to_string()))?
            };
            check_range(mnemonic, off, -2048, 2047)?;
            let base = ireg(close[open + 1..].trim())?;
            Ok((off, base))
        };

        let int3 = |op: Opcode, class: OpClass| -> Result<Vec<AsmInst>, AsmErrorKind> {
            expect(3)?;
            let (rd, rs1, rs2) = (ireg(ops[0])?, ireg(ops[1])?, ireg(ops[2])?);
            Ok(vec![AsmInst {
                op,
                rd,
                rs1,
                rs2,
                imm: 0,
                tinst: Inst::new(class)
                    .with_dest(LogicalReg::int(rd as usize))
                    .with_src1(LogicalReg::int(rs1 as usize))
                    .with_src2(LogicalReg::int(rs2 as usize)),
            }])
        };
        let int_imm = |op: Opcode, min: i64, max: i64| -> Result<Vec<AsmInst>, AsmErrorKind> {
            expect(3)?;
            let (rd, rs1) = (ireg(ops[0])?, ireg(ops[1])?);
            let imm =
                parse_int(ops[2]).ok_or_else(|| AsmErrorKind::BadOperand(ops[2].to_string()))?;
            check_range(mnemonic, imm, min, max)?;
            Ok(vec![AsmInst {
                op,
                rd,
                rs1,
                rs2: 0,
                imm,
                tinst: Inst::new(OpClass::IntAlu)
                    .with_dest(LogicalReg::int(rd as usize))
                    .with_src1(LogicalReg::int(rs1 as usize)),
            }])
        };
        let load = |op: Opcode, fp_dest: bool| -> Result<Vec<AsmInst>, AsmErrorKind> {
            expect(2)?;
            let rd = if fp_dest {
                freg(ops[0])?
            } else {
                ireg(ops[0])?
            };
            let (imm, rs1) = mem_operand(ops[1])?;
            let dest = if fp_dest {
                LogicalReg::fp(rd as usize)
            } else {
                LogicalReg::int(rd as usize)
            };
            Ok(vec![AsmInst {
                op,
                rd,
                rs1,
                rs2: 0,
                imm,
                tinst: Inst::new(OpClass::Load)
                    .with_dest(dest)
                    .with_src1(LogicalReg::int(rs1 as usize)),
            }])
        };
        let store = |op: Opcode, fp_src: bool| -> Result<Vec<AsmInst>, AsmErrorKind> {
            expect(2)?;
            let rv = if fp_src { freg(ops[0])? } else { ireg(ops[0])? };
            let (imm, rb) = mem_operand(ops[1])?;
            let data = if fp_src {
                LogicalReg::fp(rv as usize)
            } else {
                LogicalReg::int(rv as usize)
            };
            Ok(vec![AsmInst {
                op,
                rd: 0,
                rs1: rb,
                rs2: rv,
                imm,
                tinst: Inst::new(OpClass::Store)
                    .with_src1(data)
                    .with_src2(LogicalReg::int(rb as usize)),
            }])
        };
        let branch = |op: Opcode, zero_form: bool| -> Result<Vec<AsmInst>, AsmErrorKind> {
            let (rs1, rs2, target) = if zero_form {
                expect(2)?;
                (ireg(ops[0])?, 0, ops[1])
            } else {
                expect(3)?;
                (ireg(ops[0])?, ireg(ops[1])?, ops[2])
            };
            let imm = self.imm_or_label(target)?;
            Ok(vec![AsmInst {
                op,
                rd: 0,
                rs1,
                rs2,
                imm,
                tinst: Inst::new(OpClass::BranchCond)
                    .with_src1(LogicalReg::int(rs1 as usize))
                    .with_src2(LogicalReg::int(rs2 as usize)),
            }])
        };
        let fp3 = |op: Opcode, class: OpClass| -> Result<Vec<AsmInst>, AsmErrorKind> {
            expect(3)?;
            let (rd, rs1, rs2) = (freg(ops[0])?, freg(ops[1])?, freg(ops[2])?);
            Ok(vec![AsmInst {
                op,
                rd,
                rs1,
                rs2,
                imm: 0,
                tinst: Inst::new(class)
                    .with_dest(LogicalReg::fp(rd as usize))
                    .with_src1(LogicalReg::fp(rs1 as usize))
                    .with_src2(LogicalReg::fp(rs2 as usize)),
            }])
        };
        let fcmp = |op: Opcode| -> Result<Vec<AsmInst>, AsmErrorKind> {
            expect(3)?;
            let (rd, rs1, rs2) = (ireg(ops[0])?, freg(ops[1])?, freg(ops[2])?);
            Ok(vec![AsmInst {
                op,
                rd,
                rs1,
                rs2,
                imm: 0,
                tinst: Inst::new(OpClass::FpAdd)
                    .with_dest(LogicalReg::int(rd as usize))
                    .with_src1(LogicalReg::fp(rs1 as usize))
                    .with_src2(LogicalReg::fp(rs2 as usize)),
            }])
        };

        match mnemonic {
            "add" => int3(Opcode::Add, OpClass::IntAlu),
            "sub" => int3(Opcode::Sub, OpClass::IntAlu),
            "mul" => int3(Opcode::Mul, OpClass::IntMul),
            "div" => int3(Opcode::Div, OpClass::IntDiv),
            "rem" => int3(Opcode::Rem, OpClass::IntDiv),
            "and" => int3(Opcode::And, OpClass::IntAlu),
            "or" => int3(Opcode::Or, OpClass::IntAlu),
            "xor" => int3(Opcode::Xor, OpClass::IntAlu),
            "sll" => int3(Opcode::Sll, OpClass::IntAlu),
            "srl" => int3(Opcode::Srl, OpClass::IntAlu),
            "sra" => int3(Opcode::Sra, OpClass::IntAlu),
            "slt" => int3(Opcode::Slt, OpClass::IntAlu),
            "sltu" => int3(Opcode::Sltu, OpClass::IntAlu),
            "addi" => int_imm(Opcode::Addi, -2048, 2047),
            "andi" => int_imm(Opcode::Andi, -2048, 2047),
            "ori" => int_imm(Opcode::Ori, -2048, 2047),
            "xori" => int_imm(Opcode::Xori, -2048, 2047),
            "slti" => int_imm(Opcode::Slti, -2048, 2047),
            "slli" => int_imm(Opcode::Slli, 0, 63),
            "srli" => int_imm(Opcode::Srli, 0, 63),
            "srai" => int_imm(Opcode::Srai, 0, 63),
            "li" | "la" => {
                expect(2)?;
                let rd = ireg(ops[0])?;
                let imm = if mnemonic == "la" {
                    self.lookup(ops[1])? as i64
                } else {
                    self.imm_or_label(ops[1])?
                };
                Ok(vec![li_inst(rd, imm)])
            }
            "mv" => {
                expect(2)?;
                let (rd, rs1) = (ireg(ops[0])?, ireg(ops[1])?);
                Ok(vec![AsmInst {
                    op: Opcode::Addi,
                    rd,
                    rs1,
                    rs2: 0,
                    imm: 0,
                    tinst: Inst::new(OpClass::IntAlu)
                        .with_dest(LogicalReg::int(rd as usize))
                        .with_src1(LogicalReg::int(rs1 as usize)),
                }])
            }
            "ld" => load(Opcode::Ld, false),
            "lw" => load(Opcode::Lw, false),
            "lb" => load(Opcode::Lb, false),
            "lbu" => load(Opcode::Lbu, false),
            "fld" => load(Opcode::Fld, true),
            "sd" => store(Opcode::Sd, false),
            "sw" => store(Opcode::Sw, false),
            "sb" => store(Opcode::Sb, false),
            "fsd" => store(Opcode::Fsd, true),
            "beq" => branch(Opcode::Beq, false),
            "bne" => branch(Opcode::Bne, false),
            "blt" => branch(Opcode::Blt, false),
            "bge" => branch(Opcode::Bge, false),
            "bltu" => branch(Opcode::Bltu, false),
            "bgeu" => branch(Opcode::Bgeu, false),
            "beqz" => branch(Opcode::Beq, true),
            "bnez" => branch(Opcode::Bne, true),
            "bltz" => branch(Opcode::Blt, true),
            "bgez" => branch(Opcode::Bge, true),
            "j" => {
                expect(1)?;
                let imm = self.imm_or_label(ops[0])?;
                Ok(vec![jump_inst(imm)])
            }
            "jr" => {
                expect(1)?;
                let rs1 = ireg(ops[0])?;
                Ok(vec![jr_inst(rs1)])
            }
            "ret" => {
                expect(0)?;
                Ok(vec![jr_inst(1)])
            }
            "call" => {
                // `call f` expands to two architectural instructions so the
                // return address is a real register write the renamer sees:
                //   li ra, <pc+8>   (the address after the jump)
                //   j  f
                // (`j` is a BranchUncond and cannot carry a destination
                // register in this timing model, hence the explicit `li`.)
                expect(1)?;
                let target = self.imm_or_label(ops[0])?;
                Ok(vec![li_inst(1, (pc + 8) as i64), jump_inst(target)])
            }
            "fadd.d" => fp3(Opcode::FaddD, OpClass::FpAdd),
            "fsub.d" => fp3(Opcode::FsubD, OpClass::FpAdd),
            "fmul.d" => fp3(Opcode::FmulD, OpClass::FpMul),
            "fdiv.d" => fp3(Opcode::FdivD, OpClass::FpDiv),
            "fsqrt.d" | "fmv.d" => {
                expect(2)?;
                let (rd, rs1) = (freg(ops[0])?, freg(ops[1])?);
                let (op, class) = if mnemonic == "fsqrt.d" {
                    (Opcode::FsqrtD, OpClass::FpSqrt)
                } else {
                    (Opcode::FmvD, OpClass::FpAdd)
                };
                Ok(vec![AsmInst {
                    op,
                    rd,
                    rs1,
                    rs2: 0,
                    imm: 0,
                    tinst: Inst::new(class)
                        .with_dest(LogicalReg::fp(rd as usize))
                        .with_src1(LogicalReg::fp(rs1 as usize)),
                }])
            }
            "fcvt.d.l" => {
                expect(2)?;
                let (rd, rs1) = (freg(ops[0])?, ireg(ops[1])?);
                Ok(vec![AsmInst {
                    op: Opcode::FcvtDL,
                    rd,
                    rs1,
                    rs2: 0,
                    imm: 0,
                    tinst: Inst::new(OpClass::FpAdd)
                        .with_dest(LogicalReg::fp(rd as usize))
                        .with_src1(LogicalReg::int(rs1 as usize)),
                }])
            }
            "fcvt.l.d" => {
                expect(2)?;
                let (rd, rs1) = (ireg(ops[0])?, freg(ops[1])?);
                Ok(vec![AsmInst {
                    op: Opcode::FcvtLD,
                    rd,
                    rs1,
                    rs2: 0,
                    imm: 0,
                    tinst: Inst::new(OpClass::FpAdd)
                        .with_dest(LogicalReg::int(rd as usize))
                        .with_src1(LogicalReg::fp(rs1 as usize)),
                }])
            }
            "flt.d" => fcmp(Opcode::FltD),
            "fle.d" => fcmp(Opcode::FleD),
            "feq.d" => fcmp(Opcode::FeqD),
            "nop" => {
                expect(0)?;
                Ok(vec![AsmInst {
                    op: Opcode::Nop,
                    rd: 0,
                    rs1: 0,
                    rs2: 0,
                    imm: 0,
                    tinst: Inst::new(OpClass::Nop),
                }])
            }
            "halt" => {
                expect(0)?;
                Ok(vec![AsmInst {
                    op: Opcode::Halt,
                    rd: 0,
                    rs1: 0,
                    rs2: 0,
                    imm: 0,
                    tinst: Inst::new(OpClass::Nop),
                }])
            }
            _ => Err(AsmErrorKind::UnknownMnemonic(mnemonic.to_string())),
        }
    }
}

fn li_inst(rd: u8, imm: i64) -> AsmInst {
    AsmInst {
        op: Opcode::Li,
        rd,
        rs1: 0,
        rs2: 0,
        imm,
        tinst: Inst::new(OpClass::IntAlu).with_dest(LogicalReg::int(rd as usize)),
    }
}

fn jump_inst(target: i64) -> AsmInst {
    AsmInst {
        op: Opcode::J,
        rd: 0,
        rs1: 0,
        rs2: 0,
        imm: target,
        tinst: Inst::new(OpClass::BranchUncond),
    }
}

fn jr_inst(rs1: u8) -> AsmInst {
    AsmInst {
        op: Opcode::Jr,
        rd: 0,
        rs1,
        rs2: 0,
        imm: 0,
        tinst: Inst::new(OpClass::BranchUncond).with_src1(LogicalReg::int(rs1 as usize)),
    }
}

/// Pass-1 size of a data directive, in bytes. Must agree exactly with
/// the bytes `encode_data` emits in pass 2, or labels would drift.
fn data_size(directive: &str, tail: &str, data_addr: u64) -> Result<u64, AsmErrorKind> {
    let count = || -> Result<u64, AsmErrorKind> {
        let vs: Vec<&str> = tail.split(',').map(str::trim).collect();
        if vs.iter().any(|v| v.is_empty()) {
            return Err(AsmErrorKind::BadOperand(tail.to_string()));
        }
        Ok(vs.len() as u64)
    };
    match directive {
        "dword" | "double" => Ok(8 * count()?),
        "word" => Ok(4 * count()?),
        "byte" => count(),
        "space" => {
            let n = parse_int(tail).ok_or_else(|| AsmErrorKind::BadOperand(tail.to_string()))?;
            check_range("space", n, 0, MAX_DATA_BYTES as i64)?;
            Ok(n as u64)
        }
        "align" => {
            let n = parse_int(tail).ok_or_else(|| AsmErrorKind::BadOperand(tail.to_string()))?;
            check_range("align", n, 1, 4096)?;
            let n = n as u64;
            let offset = data_addr - DATA_BASE;
            Ok((n - offset % n) % n)
        }
        _ => Err(AsmErrorKind::UnknownDirective(format!(".{directive}"))),
    }
}

fn check_range(mnemonic: &str, value: i64, min: i64, max: i64) -> Result<(), AsmErrorKind> {
    if (min..=max).contains(&value) {
        Ok(())
    } else {
        Err(AsmErrorKind::ImmediateOutOfRange {
            mnemonic: mnemonic.to_string(),
            value,
            min,
            max,
        })
    }
}

fn head_tail(stmt: &str) -> (&str, &str) {
    match stmt.split_once(char::is_whitespace) {
        Some((h, t)) => (h, t.trim()),
        None => (stmt, ""),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{DATA_BASE, TEXT_BASE};

    fn kind_of(src: &str) -> (usize, AsmErrorKind) {
        let e = assemble(src).expect_err("should not assemble");
        (e.line, e.kind)
    }

    #[test]
    fn forward_and_backward_labels_resolve() {
        let p = assemble(
            "start:\n    addi t0, zero, 1\n    beqz t0, done\n    j start\ndone:\n    halt\n",
        )
        .unwrap();
        assert_eq!(p.insts.len(), 4);
        // `beqz t0, done` → forward target = TEXT_BASE + 12.
        assert_eq!(p.insts[1].imm, (TEXT_BASE + 12) as i64);
        // `j start` → backward target = TEXT_BASE.
        assert_eq!(p.insts[2].imm, TEXT_BASE as i64);
    }

    #[test]
    fn duplicate_label_is_an_error_with_line() {
        let (line, kind) = kind_of("a:\n    nop\na:\n    halt\n");
        assert_eq!(line, 3);
        assert_eq!(kind, AsmErrorKind::DuplicateLabel("a".into()));
    }

    #[test]
    fn undefined_label_is_an_error_with_line() {
        let (line, kind) = kind_of("    nop\n    j nowhere\n");
        assert_eq!(line, 2);
        assert_eq!(kind, AsmErrorKind::UndefinedLabel("nowhere".into()));
    }

    #[test]
    fn unknown_mnemonic_is_an_error_with_line() {
        let (line, kind) = kind_of("    nop\n    frobnicate t0, t1\n");
        assert_eq!(line, 2);
        assert_eq!(kind, AsmErrorKind::UnknownMnemonic("frobnicate".into()));
    }

    #[test]
    fn addi_immediate_range_is_enforced() {
        assert!(assemble("    addi t0, t0, 2047\n").is_ok());
        assert!(assemble("    addi t0, t0, -2048\n").is_ok());
        let (line, kind) = kind_of("    addi t0, t0, 2048\n");
        assert_eq!(line, 1);
        assert!(matches!(
            kind,
            AsmErrorKind::ImmediateOutOfRange { value: 2048, .. }
        ));
        let (_, kind) = kind_of("    slli t0, t0, 64\n");
        assert!(matches!(
            kind,
            AsmErrorKind::ImmediateOutOfRange { value: 64, .. }
        ));
    }

    #[test]
    fn bad_register_and_operand_count() {
        let (_, kind) = kind_of("    add t0, t9, t1\n");
        assert_eq!(kind, AsmErrorKind::BadRegister("t9".into()));
        let (_, kind) = kind_of("    add t0, t1\n");
        assert_eq!(
            kind,
            AsmErrorKind::WrongOperandCount {
                mnemonic: "add".into(),
                expected: 3,
                found: 2
            }
        );
    }

    #[test]
    fn call_expands_to_li_ra_plus_jump() {
        let p = assemble("    nop\n    call f\n    halt\nf:\n    ret\n").unwrap();
        assert_eq!(p.insts.len(), 5);
        // call sits at TEXT_BASE+4; its li ra carries the return address
        // TEXT_BASE+12 (the halt), and its jump targets f = TEXT_BASE+16.
        assert_eq!(p.insts[1].op, Opcode::Li);
        assert_eq!(p.insts[1].rd, 1);
        assert_eq!(p.insts[1].imm, (TEXT_BASE + 12) as i64);
        assert_eq!(p.insts[2].op, Opcode::J);
        assert_eq!(p.insts[2].imm, (TEXT_BASE + 16) as i64);
        // ret = jr ra.
        assert_eq!(p.insts[4].op, Opcode::Jr);
        assert_eq!(p.insts[4].rs1, 1);
    }

    #[test]
    fn data_directives_lay_out_and_labels_point_into_data() {
        let p = assemble(
            "    .data\nv: .dword 1, 2, 3\nb: .byte 7\n    .align 8\nw: .space 16\n    .text\n    la t0, v\n    la t1, w\n    halt\n",
        )
        .unwrap();
        assert_eq!(p.insts[0].imm, DATA_BASE as i64);
        assert_eq!(p.insts[1].imm, (DATA_BASE + 32) as i64);
        let (base, image) = &p.data[0];
        assert_eq!(*base, DATA_BASE);
        assert_eq!(image.len(), 48);
        assert_eq!(u64::from_le_bytes(image[8..16].try_into().unwrap()), 2);
        assert_eq!(image[24], 7);
    }

    #[test]
    fn misplaced_items_are_rejected() {
        let (_, kind) = kind_of("    .dword 1\n");
        assert!(matches!(kind, AsmErrorKind::MisplacedItem(_)));
        let (_, kind) = kind_of("    .data\n    addi t0, t0, 1\n");
        assert!(matches!(kind, AsmErrorKind::MisplacedItem(_)));
    }

    #[test]
    fn empty_program_is_an_error() {
        let (_, kind) = kind_of("# nothing\n    .data\nx: .dword 1\n");
        assert_eq!(kind, AsmErrorKind::EmptyProgram);
    }

    #[test]
    fn abi_register_names_map_correctly() {
        assert_eq!(int_reg("zero"), Some(0));
        assert_eq!(int_reg("ra"), Some(1));
        assert_eq!(int_reg("sp"), Some(2));
        assert_eq!(int_reg("t0"), Some(5));
        assert_eq!(int_reg("t3"), Some(28));
        assert_eq!(int_reg("s0"), Some(8));
        assert_eq!(int_reg("fp"), Some(8));
        assert_eq!(int_reg("s2"), Some(18));
        assert_eq!(int_reg("a0"), Some(10));
        assert_eq!(int_reg("a7"), Some(17));
        assert_eq!(int_reg("x31"), Some(31));
        assert_eq!(int_reg("x32"), None);
        assert_eq!(fp_reg("f31"), Some(31));
        assert_eq!(fp_reg("fp"), None);
        assert_eq!(fp_reg("f32"), None);
    }

    #[test]
    fn errors_render_with_line_numbers() {
        let e = assemble("    j nowhere\n").unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("line 1"), "{msg}");
        assert!(msg.contains("nowhere"), "{msg}");
    }
}
