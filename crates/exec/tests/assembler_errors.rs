//! Corrupt-source corpus: the assembler must return a typed error with a
//! line number for every malformed input — never panic, never accept.

use vpr_exec::{assemble, AsmErrorKind};

/// Each entry: (source, expected line, a predicate name for the message).
const CORPUS: &[(&str, usize)] = &[
    // Garbage mnemonics and operands.
    ("    garbage\n", 1),
    ("    add t0 t1 t2\n", 1),        // missing commas
    ("    addi t0, t1\n", 1),         // missing operand
    ("    addi t0, t1, t2, t3\n", 1), // extra operand
    ("    add t0, q7, t1\n", 1),      // bad register
    ("    fadd.d f1, t0, f2\n", 1),   // int reg in fp slot
    ("    ld t0, (\n", 1),            // mangled mem operand
    ("    ld t0, 8(t1\n", 1),         // unclosed paren
    ("    ld t0, 4096(t1)\n", 1),     // offset out of range
    ("    sd t0, -2049(t1)\n", 1),    // offset out of range
    ("    addi t0, t0, 99999\n", 1),  // imm out of range
    ("    srai t0, t0, -1\n", 1),     // shamt out of range
    ("    li t0, 0xgg\n", 1),         // bad hex
    ("    j\n", 1),                   // jump with no target
    ("    j 12q\n", 1),               // malformed target
    ("    beq t0, t1\n", 1),          // branch missing target
    // Label problems.
    ("x:\nx:\n    nop\n", 2),
    ("    nop\n    bnez t0, missing\n", 2),
    ("9bad: nop\n", 1), // label starts with a digit
    ("    call nowhere\n", 1),
    // Directive problems.
    ("    .data\n    .quad 1\n", 2),
    ("    .data\nv: .dword\n", 2),      // no values
    ("    .data\nv: .dword 1,,2\n", 2), // empty value
    ("    .data\nv: .byte 300\n", 2),   // byte out of range
    ("    .data\nv: .space -4\n", 2),
    ("    .data\nv: .space 99999999\n", 2), // larger than MAX_DATA_BYTES
    ("    .data\nv: .align 0\n", 2),
    ("    .data\nv: .double abc\n", 2),
    ("    .dword 1\n", 1),       // data directive in .text
    ("    .data\n    nop\n", 2), // instruction in .data
    // Structurally empty.
    ("", 1),
    ("# only a comment\n", 1),
    ("    .data\nv: .dword 1\n", 2), // data but no text
];

#[test]
fn corrupt_sources_yield_typed_errors_with_lines() {
    for (src, line) in CORPUS {
        let err = assemble(src).expect_err(&format!("accepted corrupt source: {src:?}"));
        assert_eq!(
            err.line, *line,
            "wrong line for {src:?}: got {} ({})",
            err.line, err.kind
        );
        // Every error renders with its line number.
        assert!(err.to_string().starts_with(&format!("line {}", err.line)));
    }
}

#[test]
fn error_kinds_are_inspectable() {
    let err = assemble("    addi t0, t0, 5000\n").unwrap_err();
    match err.kind {
        AsmErrorKind::ImmediateOutOfRange {
            value, min, max, ..
        } => {
            assert_eq!(value, 5000);
            assert_eq!((min, max), (-2048, 2047));
        }
        other => panic!("expected ImmediateOutOfRange, got {other:?}"),
    }
}

#[test]
fn whitespace_comments_and_shared_label_lines_assemble() {
    // The flip side of the corpus: hairy-but-legal syntax is accepted.
    let src = "\n\n# leading comment\n  start:   li t0, 1   # trailing comment\nmid: end: addi t0, t0, 1\n    halt\n";
    let program = assemble(src).expect("legal source rejected");
    assert_eq!(program.insts.len(), 3);
}
