//! A minimal, self-contained stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the real `proptest`
//! cannot be fetched. This shim keeps the same source-level surface the
//! workspace's property tests use — the [`proptest!`] macro, range /
//! tuple / [`Just`] / [`prop_oneof!`] / [`collection::vec`] strategies,
//! `prop_map`, and the `prop_assert*` macros — over a deterministic
//! xoshiro256++ driver.
//!
//! Differences from upstream: no shrinking (a failing case reports the
//! case number and message only), no persistence files, and uniform (not
//! bias-tuned) sampling. Each named test still runs `cases` independent
//! random inputs and every property must hold for all of them, so the
//! tests keep their full meaning.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

// ----------------------------------------------------------------------
// Deterministic RNG
// ----------------------------------------------------------------------

/// The deterministic generator driving every test case.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl TestRng {
    /// Builds the generator for test `name`, case number `case`.
    /// Deterministic: the same (name, case) pair always yields the same
    /// input stream, so failures are reproducible.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut state = h ^ ((case as u64) << 32) ^ 0x5bd1_e995;
        Self {
            s: [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ],
        }
    }

    /// Next 64 random bits (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.s = [s0, s1, s2, s3];
        result
    }

    /// Uniform draw from `[0, 1)` with 53 bits of precision.
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample an empty range");
        self.next_u64() % bound
    }
}

// ----------------------------------------------------------------------
// Strategy core
// ----------------------------------------------------------------------

/// A recipe for generating values of [`Strategy::Value`].
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (mirrors proptest's `prop_map`).
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy so heterogeneous strategies producing the
    /// same value type can be mixed (e.g. by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

trait DynStrategy<T> {
    fn sample_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased [`Strategy`].
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample_dyn(rng)
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always yields a clone of its payload.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A uniform choice between type-erased alternatives ([`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `arms`.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Self {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.next_below(self.arms.len() as u64) as usize;
        self.arms[idx].sample(rng)
    }
}

// ----------------------------------------------------------------------
// Range strategies
// ----------------------------------------------------------------------

macro_rules! impl_uint_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.next_below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.next_below(span + 1) as $t
            }
        }
    )*};
}

impl_uint_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_sint_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.next_below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.next_below(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_sint_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.next_unit_f64() * (hi - lo)
    }
}

// ----------------------------------------------------------------------
// Tuple strategies
// ----------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// ----------------------------------------------------------------------
// any::<T>()
// ----------------------------------------------------------------------

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy [`any`] returns for this type.
    type Strategy: Strategy<Value = Self>;
    /// Builds that strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (`any::<bool>()` etc.).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Whole-domain strategy for `bool`.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

// ----------------------------------------------------------------------
// Collections
// ----------------------------------------------------------------------

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A length range accepted by [`vec()`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            Self {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec length range");
            Self {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                min: n,
                max_inclusive: n,
            }
        }
    }

    /// The result of [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy producing `Vec`s of `element` values with a length drawn
    /// uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_inclusive - self.size.min) as u64;
            let len = self.size.min
                + if span == 0 {
                    0
                } else {
                    rng.next_below(span + 1) as usize
                };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Namespace mirror of the real crate (`prop::collection::vec`, ...).
pub mod prop {
    pub use crate::collection;
}

// ----------------------------------------------------------------------
// Config, errors, macros
// ----------------------------------------------------------------------

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A failed property, carrying the rendered assertion message.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// What a property body evaluates to.
pub type TestCaseResult = Result<(), TestCaseError>;

/// `assert!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError(::std::format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::TestCaseError(::std::format!(
                "assertion failed: `{:?}` == `{:?}`",
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::TestCaseError(::std::format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                left,
                right,
                ::std::format!($($fmt)+)
            )));
        }
    }};
}

/// Uniform choice between strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut __rng);)+
                let outcome: $crate::TestCaseResult = (move || {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "property `{}` failed on case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
    )*};
}

/// The glob-imported surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult, Union,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(
            a in 0usize..10,
            b in 5u64..=6,
            f in 0.25f64..0.75,
            flags in prop::collection::vec(any::<bool>(), 3..=5),
        ) {
            prop_assert!(a < 10);
            prop_assert!(b == 5 || b == 6);
            prop_assert!((0.25..0.75).contains(&f), "f = {f}");
            prop_assert!((3..=5).contains(&flags.len()));
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            (0usize..4).prop_map(|x| x * 2),
            Just(99usize),
        ]) {
            prop_assert!(v == 99 || v % 2 == 0);
            prop_assert_eq!(v.min(99), v);
        }
    }

    #[test]
    fn deterministic_per_case() {
        let mut a = crate::TestRng::for_case("x", 3);
        let mut b = crate::TestRng::for_case("x", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_case("x", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
