//! A minimal, self-contained stand-in for the `rand` crate.
//!
//! The build environment for this repository has no network access, so the
//! real `rand` cannot be fetched from crates.io. This shim implements the
//! narrow API surface the workspace actually uses — [`SeedableRng`],
//! [`Rng::gen_range`] over half-open integer and float ranges, and
//! [`rngs::StdRng`] — on top of xoshiro256++ seeded through SplitMix64.
//!
//! The stream differs from upstream `rand`'s ChaCha-based `StdRng`, so
//! generated sequences are not bit-compatible with crates.io builds; they
//! are, however, deterministic per seed and of high statistical quality,
//! which is all the synthetic trace generators require.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// The low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a `u64` seed (the only seeding mode used here).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Samples a value uniformly from `range` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }
}

impl<T: RngCore + Sized> Rng for T {}

/// A range that knows how to draw a uniform sample from itself.
pub trait SampleRange {
    /// The sampled value's type.
    type Output;
    /// Draws one uniform sample.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample an empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Named generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman/Vigna),
    /// seeded via SplitMix64 as its authors recommend.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl StdRng {
        /// The raw xoshiro256++ state, for checkpointing. **Extension over
        /// the crates.io API**: the simulator's snapshot subsystem saves
        /// and restores generator positions through it.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from [`StdRng::state`]. The stream
        /// continues exactly where the saved generator stood.
        pub fn from_state(s: [u64; 4]) -> Self {
            Self { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s2 = s2 ^ s0;
            let mut s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.s = [s0, s1, s2, s3];
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let a_vals: Vec<u64> = (0..16).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let c_vals: Vec<u64> = (0..16).map(|_| c.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(a_vals, c_vals, "different seeds diverge");
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
            let u = rng.gen_range(3usize..4);
            assert_eq!(u, 3);
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[rng.gen_range(0usize..10)] += 1;
        }
        for &b in &buckets {
            assert!(
                (8_000..12_000).contains(&b),
                "bucket count {b} far from uniform"
            );
        }
    }
}
