//! A minimal, self-contained stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the real `criterion`
//! cannot be fetched. This shim provides the subset the workspace's
//! benches use — [`Criterion`], [`BenchmarkGroup::sample_size`],
//! [`Bencher::iter`], [`criterion_group!`] and [`criterion_main!`] — as a
//! plain timing harness: each benchmark runs one warm-up iteration plus
//! `sample_size` timed iterations and prints the per-iteration mean.
//!
//! No statistics, plotting, or baseline comparison; for trend tracking the
//! workspace's own `BENCH_throughput.json` harness is the reference.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// The benchmark driver handed to every `criterion_group!` target.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        run_one(id.as_ref(), self.sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id.as_ref()),
            self.sample_size,
            f,
        );
        self
    }

    /// Ends the group (provided for API compatibility; dropping works too).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the
/// routine under measurement.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this bencher's configured iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warm-up iteration.
        std::hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        iters: sample_size as u64,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean = b.elapsed.as_secs_f64() / b.iters.max(1) as f64;
    println!(
        "bench {id:<40} {:>12.3} ms/iter ({} iters)",
        mean * 1e3,
        b.iters
    );
}

/// Declares a function that runs the listed benchmark targets in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a bench binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut calls = 0u64;
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group
            .sample_size(5)
            .bench_function("count", |b| b.iter(|| calls += 1));
        // 5 timed + 1 warm-up.
        assert_eq!(calls, 6);
    }
}
