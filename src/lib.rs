//! # vpr — virtual-physical registers
//!
//! Facade crate for the reproduction of *"Virtual-Physical Registers"*
//! (A. González, J. González, M. Valero, HPCA-4, 1998): a cycle-accurate,
//! trace-driven out-of-order superscalar simulator with four register
//! renaming schemes — the conventional R10000-style baseline, the same with
//! counter-based early release (the paper's refs [8]/[10]), and the paper's
//! virtual-physical scheme with physical-register allocation at either the
//! issue or the write-back stage.
//!
//! The workspace crates are re-exported here under short names:
//!
//! * [`isa`] — instruction-set model (ops, registers, dynamic instructions)
//! * [`trace`] — synthetic SPEC95-like workload generators
//! * [`frontend`] — fetch engine and 2-bit branch-history-table predictor
//! * [`mem`] — lockup-free data cache, bus and memory disambiguation
//! * [`core`] — the out-of-order core and the renaming schemes
//!
//! ## Quickstart
//!
//! ```
//! use vpr::core::{Processor, RenameScheme, SimConfig};
//! use vpr::trace::{Benchmark, TraceBuilder};
//!
//! // A small run of the synthetic `swim`-like workload under the paper's
//! // virtual-physical scheme with write-back allocation and NRR = 32.
//! let config = SimConfig::builder()
//!     .scheme(RenameScheme::VirtualPhysicalWriteback { nrr: 32 })
//!     .physical_regs(64)
//!     .build();
//! let trace = TraceBuilder::new(Benchmark::Swim).seed(42).build();
//! let mut cpu = Processor::new(config, trace);
//! let stats = cpu.run(20_000);
//! assert!(stats.ipc() > 0.0);
//! ```
#![forbid(unsafe_code)]

pub use vpr_core as core;
pub use vpr_frontend as frontend;
pub use vpr_isa as isa;
pub use vpr_mem as mem;
pub use vpr_trace as trace;
