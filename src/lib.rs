//! # vpr — virtual-physical registers
//!
//! Facade crate for the reproduction of *"Virtual-Physical Registers"*
//! (A. González, J. González, M. Valero, HPCA-4, 1998): a cycle-accurate,
//! trace-driven out-of-order superscalar simulator with four register
//! renaming schemes — the conventional R10000-style baseline, the same with
//! counter-based early release (the paper's refs \[8\]/\[10\]), and the
//! paper's virtual-physical scheme with physical-register allocation at
//! either the issue or the write-back stage.
//!
//! The workspace crates are re-exported here under short names:
//!
//! * [`isa`] — instruction-set model (ops, registers, dynamic instructions)
//! * [`trace`] — synthetic SPEC95-like workload generators
//! * [`exec`] — RISC-V-style assembler and functional emulator: assembled
//!   programs (`asm/*.s`) drive the pipeline as real committed-path
//!   instruction streams
//! * [`frontend`] — fetch engine and 2-bit branch-history-table predictor
//! * [`mem`] — lockup-free data cache, bus and memory disambiguation
//! * [`core`] — the out-of-order core and the renaming schemes
//! * [`snap`] — versioned checkpoint/restore of full machine state
//!   (`Processor::snapshot` / `Processor::restore`, bit-identical
//!   continuation)
//!
//! ## Quickstart
//!
//! ```
//! use vpr::core::{Processor, RenameScheme, SimConfig};
//! use vpr::trace::{Benchmark, TraceBuilder};
//!
//! // A small run of the synthetic `swim`-like workload under the paper's
//! // virtual-physical scheme with write-back allocation and NRR = 32.
//! let config = SimConfig::builder()
//!     .scheme(RenameScheme::VirtualPhysicalWriteback { nrr: 32 })
//!     .physical_regs(64)
//!     .build();
//! let trace = TraceBuilder::new(Benchmark::Swim).seed(42).build();
//! let mut cpu = Processor::new(config, trace);
//! let stats = cpu.run(20_000);
//! assert!(stats.ipc() > 0.0);
//! ```
//!
//! ## Performance
//!
//! The simulation kernel is engineered for host throughput — measured as
//! **sim-MIPS**, simulated committed instructions per host second — while
//! staying cycle-exact:
//!
//! * events flow through a bucketed **calendar queue** (`vpr_core::CalendarQueue`)
//!   with O(1) schedule/drain and zero steady-state allocation;
//! * the issue window wakes operands through per-`(class, tag)`
//!   **consumer lists** and issues from an age-sorted ready index, so a
//!   result broadcast touches only actual consumers and issue selection
//!   never scans waiting entries;
//! * **idle-cycle fast-forwarding** jumps the clock over provably dead
//!   cycles (everything stalled behind a cache miss) while replaying the
//!   per-cycle stall counters in closed form, keeping statistics
//!   bit-identical to the naive cycle-by-cycle loop.
//!
//! The invariant that these are *pure* throughput optimisations is pinned
//! by `crates/bench/tests/cycle_exact_golden.rs` (golden `SimStats` under
//! all four renaming schemes) and by property tests in
//! `crates/core/tests/proptest_kernel.rs` that check the kernel structures
//! against simple reference models. Track the perf trajectory with
//! `cargo run --release -p vpr-bench --bin throughput` (writes
//! `BENCH_throughput.json`) or `cargo bench -p vpr-bench --bench throughput`;
//! the swap from map-based structures to this kernel raised the quick
//! table2 workload from ~1.9 to ~4.5 harmonic-mean sim-MIPS (≈2.4×) on the
//! reference container.
#![forbid(unsafe_code)]

pub use vpr_core as core;
pub use vpr_exec as exec;
pub use vpr_frontend as frontend;
pub use vpr_isa as isa;
pub use vpr_mem as mem;
pub use vpr_snap as snap;
pub use vpr_trace as trace;
